//===- bench/bench_ext_known_latency.cpp - Known-latency extension --------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// The section 6 "disable balanced scheduling when the latency is known"
// extension: a static pass marks second-accesses to cache lines as known
// hits; the balanced weighter then gives those loads their fixed latency
// and reserves the block's parallelism for the genuinely uncertain loads.
// We compare balanced with and without the opt-out on line-marked code
// (the machine honours the known hits either way).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "workload/LineReuse.h"

#include <cstdio>

using namespace bsched;
using namespace bsched::bench;

int main() {
  std::printf("Extension (section 6): known-latency opt-out for second "
              "accesses to a\ncache line (32-byte lines, 2-cycle known "
              "hits; cache L80(2,10))\n\n");

  CacheSystem Memory(0.8, 2, 10);
  SimulationConfig Sim = paperSimulation();

  Table T;
  T.setHeader({"Program", "Loads", "Marked", "Naive runtime",
               "Opt-out runtime", "Gain%", "Naive spill%", "Opt spill%"});
  double SumGain = 0;
  unsigned Rows = 0;
  for (Benchmark B : allBenchmarks()) {
    Function F = buildBenchmark(B);
    unsigned Loads = 0, Marked = 0;
    for (BasicBlock &BB : F) {
      for (const Instruction &I : BB)
        Loads += I.isLoad();
      Marked += markKnownLineHits(BB, 32, 2);
    }

    PipelineConfig Naive;
    Naive.Policy = SchedulerPolicy::Balanced;
    Naive.HonorKnownLatency = false;
    PipelineConfig OptOut = Naive;
    OptOut.HonorKnownLatency = true;

    CompiledFunction NaiveC = runPipeline(F, Naive).value();
    CompiledFunction OptC = runPipeline(F, OptOut).value();
    ProgramSimResult NaiveSim = runSimulation(NaiveC, Memory, Sim).value();
    ProgramSimResult OptSim = runSimulation(OptC, Memory, Sim).value();
    double Gain = 100.0 * (NaiveSim.MeanRuntime - OptSim.MeanRuntime) /
                  NaiveSim.MeanRuntime;
    SumGain += Gain;
    ++Rows;
    T.addRow({benchmarkName(B), std::to_string(Loads),
              std::to_string(Marked),
              formatDouble(NaiveSim.MeanRuntime / 1000.0, 1) + "k",
              formatDouble(OptSim.MeanRuntime / 1000.0, 1) + "k",
              formatPercent(Gain),
              formatPercent(NaiveC.spillPercent()),
              formatPercent(OptC.spillPercent())});
  }
  T.addSeparator();
  T.addRow({"Mean", "", "", "", "", formatPercent(SumGain / Rows)});
  T.print(stdout);
  std::printf("\nKnown-hit loads keep a fixed 2-cycle weight and stop "
              "absorbing the\nblock's parallelism; the win shows up as "
              "less wasted hoisting (lower\nspill%%) on line-dense code "
              "and is neutral where every line is touched\nonce.\n");
  return 0;
}

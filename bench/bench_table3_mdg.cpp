//===- bench/bench_table3_mdg.cpp - Table 3 reproduction ------------------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// Reproduces Table 3: the detailed component analysis of MDG — percent
// improvement, traditional interlock share (TI%) and balanced interlock
// share (BI%) — for all three processor models (UNLIMITED, MAX-8, LEN-8)
// across every system configuration, plus the dynamic instruction counts
// (TIns/BIns) whose difference is the spill-code effect.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace bsched;
using namespace bsched::bench;

int main() {
  std::printf("Table 3: detailed analysis of MDG\n"
              "(Imp%% = improvement; TI%%/BI%% = interlock share of cycles "
              "for traditional/balanced;\n TIns/BIns = dynamic "
              "instructions, in thousands)\n\n");

  Function F = buildBenchmark(Benchmark::MDG);
  const ProcessorModel Processors[] = {ProcessorModel::unlimited(),
                                       ProcessorModel::maxOutstanding(8),
                                       ProcessorModel::maxLength(8)};

  // Only the simulated processor differs between the three cells of a
  // (system, latency) row, so every compilation after the first row is a
  // cache hit.
  std::vector<SystemRow> Systems = paperSystems();
  std::vector<ExperimentCell> Matrix;
  for (const SystemRow &Row : Systems)
    for (double OptLat : Row.OptimisticLatencies)
      for (const ProcessorModel &P : Processors)
        Matrix.push_back({Row.Memory->name() + "/" + P.name(), &F,
                          Row.Memory.get(), OptLat,
                          SchedulerPolicy::Balanced,
                          PipelineConfig::paperDefault(),
                          paperSimulation(P)});
  EngineResult Run = runEngineMatrix(Matrix);

  Table T;
  T.setHeader({"System", "OptLat", "TIns", "BIns", "UNL Imp%", "UNL TI%",
               "UNL BI%", "MAX8 Imp%", "MAX8 TI%", "MAX8 BI%", "LEN8 Imp%",
               "LEN8 TI%", "LEN8 BI%"});

  const char *LastGroup = nullptr;
  size_t Next = 0;
  for (const SystemRow &Row : Systems) {
    if (LastGroup != Row.Group) {
      if (LastGroup)
        T.addSeparator();
      T.addRow({Row.Group});
      LastGroup = Row.Group;
    }
    for (double OptLat : Row.OptimisticLatencies) {
      std::vector<std::string> Cells = {Row.Memory->name(),
                                        formatDouble(OptLat, 2)};
      bool CountsEmitted = false;
      for (const ProcessorModel &P : Processors) {
        (void)P;
        const CellOutcome &Out = Run.Cells[Next++];
        if (!Out.ok()) {
          if (!CountsEmitted) {
            Cells.push_back("n/a");
            Cells.push_back("n/a");
            CountsEmitted = true;
          }
          Cells.push_back("n/a (" + Out.firstError() + ")");
          Cells.push_back("n/a");
          Cells.push_back("n/a");
          continue;
        }
        const SchedulerComparison &Cmp = *Out.Comparison;
        if (!CountsEmitted) {
          Cells.push_back(formatDouble(
              Cmp.TraditionalSim.DynamicInstructions / 1000.0, 0));
          Cells.push_back(formatDouble(
              Cmp.CandidateSim.DynamicInstructions / 1000.0, 0));
          CountsEmitted = true;
        }
        Cells.push_back(formatPercent(Cmp.Improvement.MeanPercent));
        Cells.push_back(
            formatPercent(Cmp.TraditionalSim.interlockPercent()));
        Cells.push_back(
            formatPercent(Cmp.CandidateSim.interlockPercent()));
      }
      T.addRow(std::move(Cells));
    }
  }
  T.print(stdout);
  std::printf("\nPaper's shape: BI%% < TI%% on (almost) every row — "
              "balanced schedules\nincur fewer interlocks; MAX-8 shows the "
              "highest interlock shares, and\nimprovements persist on the "
              "restricted processors even though the\nbalanced scheduler "
              "is not tuned for them (section 4.4).\n");
  return 0;
}

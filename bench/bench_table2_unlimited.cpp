//===- bench/bench_table2_unlimited.cpp - Table 2 reproduction ------------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// Reproduces Table 2: percent improvement in execution time of balanced
// over traditional scheduling on the UNLIMITED processor model, for every
// benchmark and system configuration, with the traditional scheduler
// evaluated at both the optimistic (hit-time) and effective-access-time
// latencies.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace bsched;
using namespace bsched::bench;

int main() {
  std::printf("Table 2: percent improvement from balanced scheduling, "
              "processor model UNLIMITED\n"
              "(positive = balanced faster; paper averages 3%%-18%% per "
              "system row, mean 9.9%%)\n\n");

  SimulationConfig Sim = paperSimulation(ProcessorModel::unlimited());

  // One engine cell per (system row, optimistic latency, benchmark). The
  // balanced compilation of each benchmark is identical across every
  // system row, so the engine's compile cache collapses those repeats.
  std::vector<std::pair<Benchmark, Function>> Programs = paperPrograms();
  std::vector<SystemRow> Systems = paperSystems();
  std::vector<ExperimentCell> Matrix;
  for (const SystemRow &Row : Systems)
    for (double OptLat : Row.OptimisticLatencies)
      for (const auto &[B, F] : Programs)
        Matrix.push_back({Row.Memory->name() + "/" + benchmarkName(B), &F,
                          Row.Memory.get(), OptLat,
                          SchedulerPolicy::Balanced,
                          PipelineConfig::paperDefault(), Sim});
  EngineResult Run = runEngineMatrix(Matrix);

  Table T;
  std::vector<std::string> Header = {"System", "OptLat"};
  for (Benchmark B : allBenchmarks())
    Header.push_back(benchmarkName(B));
  Header.push_back("Mean");
  T.setHeader(std::move(Header));

  const char *LastGroup = nullptr;
  double GrandSum = 0.0;
  unsigned GrandCount = 0;
  size_t Next = 0;
  for (const SystemRow &Row : Systems) {
    if (LastGroup != Row.Group) {
      if (LastGroup)
        T.addSeparator();
      T.addRow({Row.Group});
      LastGroup = Row.Group;
    }
    for (double OptLat : Row.OptimisticLatencies) {
      std::vector<std::string> Cells = {Row.Memory->name(),
                                        formatDouble(OptLat, 2)};
      double Sum = 0.0;
      for (const auto &Program : Programs) {
        (void)Program;
        const CellOutcome &Out = Run.Cells[Next++];
        if (!Out.ok()) {
          Cells.push_back("n/a (" + Out.firstError() + ")");
          continue;
        }
        Cells.push_back(formatPercent(Out.Comparison->Improvement.MeanPercent));
        Sum += Out.Comparison->Improvement.MeanPercent;
      }
      double Mean = Sum / static_cast<double>(allBenchmarks().size());
      Cells.push_back(formatPercent(Mean));
      T.addRow(std::move(Cells));
      GrandSum += Mean;
      ++GrandCount;
    }
  }
  T.print(stdout);
  std::printf("\nGrand mean over all system rows: %s%%\n",
              formatPercent(GrandSum / GrandCount).c_str());

  // Machine-readable artifact: run shape, wall time, simulated cycles
  // (from the engine's merged metric snapshot), grand mean.
  JsonWriter W;
  W.beginObject();
  W.key("name").value("table2_unlimited");
  W.key("config").beginObject();
  W.key("processor").value("unlimited");
  W.key("benchmarks").value(Programs.size());
  W.key("system_rows").value(Systems.size());
  W.key("cells").value(Matrix.size());
  W.key("runs_per_block").value(Sim.NumRuns);
  W.endObject();
  W.key("wall_ms").valueFixed(Run.Counters.WallMillis, 3);
  W.key("cache_hits").value(Run.Counters.CacheHits);
  W.key("cache_misses").value(Run.Counters.CacheMisses);
  W.key("cycles").value(counterOrZero(Run.Metrics, "bsched.sim.cycles"));
  W.key("grand_mean_percent").valueFixed(GrandSum / GrandCount, 3);
  W.endObject();
  writeBenchArtifact("table2_unlimited", W);
  std::printf("\nShape checks against the paper:\n"
              "  - gains grow with miss penalty: L80(2,10) > L80(2,5)\n"
              "  - gains grow with miss rate:    L80(...)  > L95(...)\n"
              "  - gains grow with sigma:        N(u,5)    > N(u,2)\n"
              "  - N(30,5) is the stress case (latency >> LLP): balanced\n"
              "    can lose; see EXPERIMENTS.md for the divergence "
              "discussion.\n");
  return 0;
}

//===- bench/bench_ablation_unionfind.cpp - Chances-estimate ablation -----==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// Compares the two ways of computing the paper's "Chances" (maximum loads
// in series per connected component): the exact longest-load-path DP, and
// the paper's O(n a(n)) union-find min/max-level trick (section 3). We
// measure how often the weights differ and whether the resulting
// schedules' quality differs.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "dag/DagBuilder.h"
#include "sched/BalancedWeighter.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cmath>
#include <cstdio>

using namespace bsched;
using namespace bsched::bench;

int main() {
  std::printf("Ablation: exact longest-load-path vs. the paper's "
              "union-find level\napproximation of Chances\n\n");

  // -- Weight agreement on the workload blocks.
  Table WT("Per-block weight agreement");
  WT.setHeader({"Program", "Loads", "Equal", "MaxAbsDelta"});
  for (Benchmark B : allBenchmarks()) {
    Function F = buildBenchmark(B);
    unsigned Loads = 0, Equal = 0;
    double MaxDelta = 0.0;
    for (BasicBlock &BB : F) {
      DepDag Exact = buildDag(BB);
      DepDag Approx = buildDag(BB);
      BalancedWeighter(LatencyModel(), ChancesMethod::ExactLongestPath)
          .assignWeights(Exact);
      BalancedWeighter(LatencyModel(), ChancesMethod::UnionFindLevels)
          .assignWeights(Approx);
      for (unsigned I = 0; I != Exact.size(); ++I) {
        if (!Exact.isLoad(I))
          continue;
        ++Loads;
        double Delta = std::fabs(Exact.weight(I) - Approx.weight(I));
        Equal += Delta < 1e-9;
        MaxDelta = std::max(MaxDelta, Delta);
      }
    }
    WT.addRow({benchmarkName(B), std::to_string(Loads),
               std::to_string(Equal), formatDouble(MaxDelta, 3)});
  }
  WT.print(stdout);

  // -- End-to-end improvement with each variant.
  std::printf("\nEnd-to-end improvement over traditional, N(3,5):\n\n");
  NetworkSystem Memory(3, 5);
  SimulationConfig Sim = paperSimulation();

  // The exact and union-find cells of each benchmark share their
  // traditional baseline compile through the engine cache.
  std::vector<std::pair<Benchmark, Function>> Programs = paperPrograms();
  std::vector<ExperimentCell> Matrix;
  for (const auto &[B, F] : Programs)
    for (SchedulerPolicy Candidate : {SchedulerPolicy::Balanced,
                                      SchedulerPolicy::BalancedUnionFind})
      Matrix.push_back({benchmarkName(B) + "/" + policyName(Candidate), &F,
                        &Memory, 3, Candidate,
                        PipelineConfig::paperDefault(), Sim});
  EngineResult Run = runEngineMatrix(Matrix);

  Table ET;
  ET.setHeader({"Program", "Exact Imp%", "UnionFind Imp%"});
  double SumExact = 0, SumApprox = 0;
  size_t Next = 0;
  for (const auto &[B, F] : Programs) {
    (void)F;
    const CellOutcome &ExactOut = Run.Cells[Next++];
    const CellOutcome &ApproxOut = Run.Cells[Next++];
    if (!ExactOut.ok() || !ApproxOut.ok()) {
      const CellOutcome &Bad = ExactOut.ok() ? ApproxOut : ExactOut;
      ET.addRow({benchmarkName(B), "n/a (" + Bad.firstError() + ")",
                 "n/a"});
      continue;
    }
    const SchedulerComparison &Exact = *ExactOut.Comparison;
    const SchedulerComparison &Approx = *ApproxOut.Comparison;
    ET.addRow({benchmarkName(B),
               formatPercent(Exact.Improvement.MeanPercent),
               formatPercent(Approx.Improvement.MeanPercent)});
    SumExact += Exact.Improvement.MeanPercent;
    SumApprox += Approx.Improvement.MeanPercent;
  }
  ET.addSeparator();
  ET.addRow({"Mean", formatPercent(SumExact / 8),
             formatPercent(SumApprox / 8)});
  ET.print(stdout);
  std::printf("\nThe level approximation equals the exact count whenever "
              "every node on\nthe longest path is a load; on mixed paths "
              "it deviates, but schedule\nquality is essentially "
              "unchanged — supporting the paper's use of the\ncheaper "
              "union-find formulation.\n");
  return 0;
}

//===- bench/bench_ablation_aliasing.cpp - Aliasing-transform ablation ----==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// Reproduces the effect of the paper's section 4.2 parallelism-exposing
// transformation: under the conservative f2c/C translation every array
// shares one alias class and loads cannot move above stores, crushing the
// load-level parallelism that balanced scheduling feeds on. We compile
// the workload both ways and compare improvements and measured LLP.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "dag/DagBuilder.h"
#include "dag/DagUtils.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace bsched;
using namespace bsched::bench;

namespace {

/// Mean loads-per-serial-step over a function's blocks (a crude LLP
/// proxy): number of loads divided by the longest load path.
double meanLoadParallelism(const Function &F) {
  double Sum = 0.0;
  unsigned Blocks = 0;
  for (const BasicBlock &BB : F) {
    DepDag Dag = buildDag(BB);
    std::vector<unsigned> All(Dag.size());
    for (unsigned I = 0; I != Dag.size(); ++I)
      All[I] = I;
    unsigned Loads = static_cast<unsigned>(Dag.loadNodes().size());
    if (Loads == 0)
      continue;
    Sum += static_cast<double>(Loads) /
           std::max(1u, longestLoadPath(Dag, All));
    ++Blocks;
  }
  return Blocks == 0 ? 0.0 : Sum / Blocks;
}

} // namespace

int main() {
  std::printf("Ablation: Fortran aliasing rules vs. the conservative "
              "f2c/C translation\n(section 4.2's parallelism-exposing "
              "transformation)\n\n");

  NetworkSystem Memory(3, 5);
  SimulationConfig Sim = paperSimulation();

  Table T;
  T.setHeader({"Program", "LLP fortran", "LLP c", "Imp% fortran",
               "Imp% c"});
  double SumF = 0, SumC = 0;
  for (Benchmark B : allBenchmarks()) {
    WorkloadOptions Fortran, Conservative;
    Fortran.FortranAliasing = true;
    Conservative.FortranAliasing = false;
    Function FF = buildBenchmark(B, Fortran);
    Function FC = buildBenchmark(B, Conservative);

    SchedulerComparison CmpF = compareSchedulers(FF, Memory, 3, Sim);
    SchedulerComparison CmpC = compareSchedulers(FC, Memory, 3, Sim);
    T.addRow({benchmarkName(B), formatDouble(meanLoadParallelism(FF), 2),
              formatDouble(meanLoadParallelism(FC), 2),
              formatPercent(CmpF.Improvement.MeanPercent),
              formatPercent(CmpC.Improvement.MeanPercent)});
    SumF += CmpF.Improvement.MeanPercent;
    SumC += CmpC.Improvement.MeanPercent;
  }
  T.addSeparator();
  T.addRow({"Mean", "", "", formatPercent(SumF / 8),
            formatPercent(SumC / 8)});
  T.print(stdout);

  std::printf("\nPaper's claim: without the transformation, false "
              "store->load dependences\nfrom the Fortran-to-C translation "
              "severely restrict the scheduler's\nability to exploit load "
              "level parallelism.\n");
  return 0;
}

//===- bench/bench_ablation_aliasing.cpp - Aliasing-transform ablation ----==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// Reproduces the effect of the paper's section 4.2 parallelism-exposing
// transformation: under the conservative f2c/C translation every array
// shares one alias class and loads cannot move above stores, crushing the
// load-level parallelism that balanced scheduling feeds on. We compile
// the workload both ways and compare improvements and measured LLP.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "dag/DagBuilder.h"
#include "dag/DagUtils.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace bsched;
using namespace bsched::bench;

namespace {

/// Mean loads-per-serial-step over a function's blocks (a crude LLP
/// proxy): number of loads divided by the longest load path.
double meanLoadParallelism(const Function &F) {
  double Sum = 0.0;
  unsigned Blocks = 0;
  for (const BasicBlock &BB : F) {
    DepDag Dag = buildDag(BB);
    std::vector<unsigned> All(Dag.size());
    for (unsigned I = 0; I != Dag.size(); ++I)
      All[I] = I;
    unsigned Loads = static_cast<unsigned>(Dag.loadNodes().size());
    if (Loads == 0)
      continue;
    Sum += static_cast<double>(Loads) /
           std::max(1u, longestLoadPath(Dag, All));
    ++Blocks;
  }
  return Blocks == 0 ? 0.0 : Sum / Blocks;
}

} // namespace

int main() {
  std::printf("Ablation: Fortran aliasing rules vs. the conservative "
              "f2c/C translation\n(section 4.2's parallelism-exposing "
              "transformation)\n\n");

  NetworkSystem Memory(3, 5);
  SimulationConfig Sim = paperSimulation();

  // Two programs per benchmark (Fortran vs. conservative aliasing), each
  // its own engine cell; the programs must outlive the engine run.
  WorkloadOptions Fortran, Conservative;
  Fortran.FortranAliasing = true;
  Conservative.FortranAliasing = false;
  std::vector<std::pair<Function, Function>> Programs;
  for (Benchmark B : allBenchmarks())
    Programs.emplace_back(buildBenchmark(B, Fortran),
                          buildBenchmark(B, Conservative));

  std::vector<ExperimentCell> Matrix;
  for (size_t I = 0; I != Programs.size(); ++I) {
    std::string Name = benchmarkName(allBenchmarks()[I]);
    Matrix.push_back({Name + "/fortran", &Programs[I].first, &Memory, 3,
                      SchedulerPolicy::Balanced,
                      PipelineConfig::paperDefault(), Sim});
    Matrix.push_back({Name + "/c", &Programs[I].second, &Memory, 3,
                      SchedulerPolicy::Balanced,
                      PipelineConfig::paperDefault(), Sim});
  }
  EngineResult Run = runEngineMatrix(Matrix);

  Table T;
  T.setHeader({"Program", "LLP fortran", "LLP c", "Imp% fortran",
               "Imp% c"});
  double SumF = 0, SumC = 0;
  size_t Next = 0;
  for (size_t I = 0; I != Programs.size(); ++I) {
    const Function &FF = Programs[I].first;
    const Function &FC = Programs[I].second;
    const CellOutcome &OutF = Run.Cells[Next++];
    const CellOutcome &OutC = Run.Cells[Next++];
    if (!OutF.ok() || !OutC.ok()) {
      const CellOutcome &Bad = OutF.ok() ? OutC : OutF;
      T.addRow({benchmarkName(allBenchmarks()[I]),
                "n/a (" + Bad.firstError() + ")", "n/a", "n/a", "n/a"});
      continue;
    }
    T.addRow({benchmarkName(allBenchmarks()[I]),
              formatDouble(meanLoadParallelism(FF), 2),
              formatDouble(meanLoadParallelism(FC), 2),
              formatPercent(OutF.Comparison->Improvement.MeanPercent),
              formatPercent(OutC.Comparison->Improvement.MeanPercent)});
    SumF += OutF.Comparison->Improvement.MeanPercent;
    SumC += OutC.Comparison->Improvement.MeanPercent;
  }
  T.addSeparator();
  T.addRow({"Mean", "", "", formatPercent(SumF / 8),
            formatPercent(SumC / 8)});
  T.print(stdout);

  std::printf("\nPaper's claim: without the transformation, false "
              "store->load dependences\nfrom the Fortran-to-C translation "
              "severely restrict the scheduler's\nability to exploit load "
              "level parallelism.\n");
  return 0;
}

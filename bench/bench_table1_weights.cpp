//===- bench/bench_table1_weights.cpp - Table 1 reproduction --------------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// Reproduces Table 1: the per-instruction weight-contribution matrix of
// the Figure 7 example DAG, printed as mixed fractions over twelfths the
// way the paper does, plus the final per-load weights.
//
//===----------------------------------------------------------------------===//

#include "sched/BalancedWeighter.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "tests/TestDagHelpers.h"

#include <cstdio>

using namespace bsched;
using bsched::fixtures::Figure7;

int main() {
  std::printf("Table 1: weight contributions for the Figure 7 DAG\n"
              "==================================================\n\n");
  std::printf(
      "Figure 7 reconstruction (DESIGN.md): L1 isolated; L2 -> {L3, X1, "
      "X2};\nL3 -> {L4, L5}; L5 -> L6; X3 -> X2; X4 -> X2.\n\n");

  DepDag Dag = fixtures::makeFigure7Dag();
  BalancedWeighter Weighter;
  BalancedWeighter::Breakdown BD = Weighter.computeBreakdown(Dag);

  // Paper layout: one row per load, one column per contributor.
  struct NamedNode {
    const char *Name;
    unsigned Index;
  };
  const NamedNode Loads[] = {{"L1", Figure7::L1}, {"L2", Figure7::L2},
                             {"L3", Figure7::L3}, {"L4", Figure7::L4},
                             {"L5", Figure7::L5}, {"L6", Figure7::L6}};
  const NamedNode Contributors[] = {
      {"L1", Figure7::L1}, {"L2", Figure7::L2}, {"L3", Figure7::L3},
      {"L4", Figure7::L4}, {"L5", Figure7::L5}, {"L6", Figure7::L6},
      {"X1", Figure7::X1}, {"X2", Figure7::X2}, {"X3", Figure7::X3},
      {"X4", Figure7::X4}};

  Table T;
  std::vector<std::string> Header = {"Load"};
  for (const NamedNode &C : Contributors)
    Header.push_back(C.Name);
  Header.push_back("Weight");
  T.setHeader(std::move(Header));

  for (const NamedNode &L : Loads) {
    std::vector<std::string> Row = {L.Name};
    for (const NamedNode &C : Contributors)
      Row.push_back(formatTwelfths(BD.Contribution[C.Index][L.Index]));
    Row.push_back(formatTwelfths(BD.Weights[L.Index]));
    T.addRow(std::move(Row));
  }
  T.print(stdout);

  std::printf(
      "\nPaper's printed totals: L1 = 10, L2 = 1 1/4, L3 = 2 5/12,\n"
      "L4 = 4 5/12, L5 = L6 = 2 11/12.\n"
      "Our reconstruction matches every total except L2, where Figure 6's\n"
      "algorithm forces 1 3/4 (X3 and X4 each see L2 on a 4-load path and\n"
      "must contribute 1/4); the paper's own per-cell rows are\n"
      "inconsistent with its totals there (hand-computed figure erratum —\n"
      "see DESIGN.md).\n");
  return 0;
}

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/dag_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/regalloc_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/renaming_test[1]_include.cmake")
include("/root/repo/build/tests/known_latency_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")

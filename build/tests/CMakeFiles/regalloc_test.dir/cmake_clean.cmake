file(REMOVE_RECURSE
  "CMakeFiles/regalloc_test.dir/RegAllocTest.cpp.o"
  "CMakeFiles/regalloc_test.dir/RegAllocTest.cpp.o.d"
  "regalloc_test"
  "regalloc_test.pdb"
  "regalloc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regalloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for renaming_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/renaming_test.dir/RenamingTest.cpp.o"
  "CMakeFiles/renaming_test.dir/RenamingTest.cpp.o.d"
  "renaming_test"
  "renaming_test.pdb"
  "renaming_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renaming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/known_latency_test.dir/KnownLatencyTest.cpp.o"
  "CMakeFiles/known_latency_test.dir/KnownLatencyTest.cpp.o.d"
  "known_latency_test"
  "known_latency_test.pdb"
  "known_latency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/known_latency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

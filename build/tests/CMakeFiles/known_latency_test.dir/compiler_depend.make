# Empty compiler generated dependencies file for known_latency_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bsched_workload.dir/KernelGen.cpp.o"
  "CMakeFiles/bsched_workload.dir/KernelGen.cpp.o.d"
  "CMakeFiles/bsched_workload.dir/LineReuse.cpp.o"
  "CMakeFiles/bsched_workload.dir/LineReuse.cpp.o.d"
  "CMakeFiles/bsched_workload.dir/PerfectClub.cpp.o"
  "CMakeFiles/bsched_workload.dir/PerfectClub.cpp.o.d"
  "libbsched_workload.a"
  "libbsched_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bsched_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libbsched_workload.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bsched_pipeline.dir/Experiment.cpp.o"
  "CMakeFiles/bsched_pipeline.dir/Experiment.cpp.o.d"
  "CMakeFiles/bsched_pipeline.dir/Pipeline.cpp.o"
  "CMakeFiles/bsched_pipeline.dir/Pipeline.cpp.o.d"
  "libbsched_pipeline.a"
  "libbsched_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbsched_pipeline.a"
)

# Empty dependencies file for bsched_pipeline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bsched_dag.dir/DagBuilder.cpp.o"
  "CMakeFiles/bsched_dag.dir/DagBuilder.cpp.o.d"
  "CMakeFiles/bsched_dag.dir/DagUtils.cpp.o"
  "CMakeFiles/bsched_dag.dir/DagUtils.cpp.o.d"
  "CMakeFiles/bsched_dag.dir/DepDag.cpp.o"
  "CMakeFiles/bsched_dag.dir/DepDag.cpp.o.d"
  "CMakeFiles/bsched_dag.dir/Reachability.cpp.o"
  "CMakeFiles/bsched_dag.dir/Reachability.cpp.o.d"
  "libbsched_dag.a"
  "libbsched_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libbsched_dag.a"
)

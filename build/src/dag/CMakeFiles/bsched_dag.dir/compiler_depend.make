# Empty compiler generated dependencies file for bsched_dag.
# This may be replaced when dependencies are built.

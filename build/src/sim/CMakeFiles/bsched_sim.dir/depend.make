# Empty dependencies file for bsched_sim.
# This may be replaced when dependencies are built.

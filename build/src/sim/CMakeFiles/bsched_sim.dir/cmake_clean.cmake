file(REMOVE_RECURSE
  "CMakeFiles/bsched_sim.dir/MemorySystem.cpp.o"
  "CMakeFiles/bsched_sim.dir/MemorySystem.cpp.o.d"
  "CMakeFiles/bsched_sim.dir/Simulator.cpp.o"
  "CMakeFiles/bsched_sim.dir/Simulator.cpp.o.d"
  "libbsched_sim.a"
  "libbsched_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

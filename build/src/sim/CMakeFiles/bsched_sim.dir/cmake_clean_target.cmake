file(REMOVE_RECURSE
  "libbsched_sim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bsched_regalloc.dir/LocalRegAlloc.cpp.o"
  "CMakeFiles/bsched_regalloc.dir/LocalRegAlloc.cpp.o.d"
  "CMakeFiles/bsched_regalloc.dir/RegisterRenaming.cpp.o"
  "CMakeFiles/bsched_regalloc.dir/RegisterRenaming.cpp.o.d"
  "libbsched_regalloc.a"
  "libbsched_regalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_regalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

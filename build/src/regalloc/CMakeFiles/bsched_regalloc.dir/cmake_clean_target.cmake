file(REMOVE_RECURSE
  "libbsched_regalloc.a"
)

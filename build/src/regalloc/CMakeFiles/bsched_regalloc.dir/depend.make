# Empty dependencies file for bsched_regalloc.
# This may be replaced when dependencies are built.

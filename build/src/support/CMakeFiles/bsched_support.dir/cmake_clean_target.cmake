file(REMOVE_RECURSE
  "libbsched_support.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bsched_support.dir/Rng.cpp.o"
  "CMakeFiles/bsched_support.dir/Rng.cpp.o.d"
  "CMakeFiles/bsched_support.dir/Statistics.cpp.o"
  "CMakeFiles/bsched_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/bsched_support.dir/StringUtils.cpp.o"
  "CMakeFiles/bsched_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/bsched_support.dir/Table.cpp.o"
  "CMakeFiles/bsched_support.dir/Table.cpp.o.d"
  "libbsched_support.a"
  "libbsched_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bsched_support.
# This may be replaced when dependencies are built.

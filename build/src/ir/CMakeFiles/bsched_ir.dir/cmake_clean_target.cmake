file(REMOVE_RECURSE
  "libbsched_ir.a"
)

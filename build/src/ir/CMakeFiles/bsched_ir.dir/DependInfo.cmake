
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Instruction.cpp" "src/ir/CMakeFiles/bsched_ir.dir/Instruction.cpp.o" "gcc" "src/ir/CMakeFiles/bsched_ir.dir/Instruction.cpp.o.d"
  "/root/repo/src/ir/Interpreter.cpp" "src/ir/CMakeFiles/bsched_ir.dir/Interpreter.cpp.o" "gcc" "src/ir/CMakeFiles/bsched_ir.dir/Interpreter.cpp.o.d"
  "/root/repo/src/ir/IrPrinter.cpp" "src/ir/CMakeFiles/bsched_ir.dir/IrPrinter.cpp.o" "gcc" "src/ir/CMakeFiles/bsched_ir.dir/IrPrinter.cpp.o.d"
  "/root/repo/src/ir/IrVerifier.cpp" "src/ir/CMakeFiles/bsched_ir.dir/IrVerifier.cpp.o" "gcc" "src/ir/CMakeFiles/bsched_ir.dir/IrVerifier.cpp.o.d"
  "/root/repo/src/ir/Opcode.cpp" "src/ir/CMakeFiles/bsched_ir.dir/Opcode.cpp.o" "gcc" "src/ir/CMakeFiles/bsched_ir.dir/Opcode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/bsched_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bsched_ir.dir/Instruction.cpp.o"
  "CMakeFiles/bsched_ir.dir/Instruction.cpp.o.d"
  "CMakeFiles/bsched_ir.dir/Interpreter.cpp.o"
  "CMakeFiles/bsched_ir.dir/Interpreter.cpp.o.d"
  "CMakeFiles/bsched_ir.dir/IrPrinter.cpp.o"
  "CMakeFiles/bsched_ir.dir/IrPrinter.cpp.o.d"
  "CMakeFiles/bsched_ir.dir/IrVerifier.cpp.o"
  "CMakeFiles/bsched_ir.dir/IrVerifier.cpp.o.d"
  "CMakeFiles/bsched_ir.dir/Opcode.cpp.o"
  "CMakeFiles/bsched_ir.dir/Opcode.cpp.o.d"
  "libbsched_ir.a"
  "libbsched_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bsched_ir.
# This may be replaced when dependencies are built.

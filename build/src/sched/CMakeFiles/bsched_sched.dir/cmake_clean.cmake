file(REMOVE_RECURSE
  "CMakeFiles/bsched_sched.dir/AverageWeighter.cpp.o"
  "CMakeFiles/bsched_sched.dir/AverageWeighter.cpp.o.d"
  "CMakeFiles/bsched_sched.dir/BalancedWeighter.cpp.o"
  "CMakeFiles/bsched_sched.dir/BalancedWeighter.cpp.o.d"
  "CMakeFiles/bsched_sched.dir/ListScheduler.cpp.o"
  "CMakeFiles/bsched_sched.dir/ListScheduler.cpp.o.d"
  "CMakeFiles/bsched_sched.dir/Schedule.cpp.o"
  "CMakeFiles/bsched_sched.dir/Schedule.cpp.o.d"
  "CMakeFiles/bsched_sched.dir/TraditionalWeighter.cpp.o"
  "CMakeFiles/bsched_sched.dir/TraditionalWeighter.cpp.o.d"
  "CMakeFiles/bsched_sched.dir/Weighter.cpp.o"
  "CMakeFiles/bsched_sched.dir/Weighter.cpp.o.d"
  "libbsched_sched.a"
  "libbsched_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

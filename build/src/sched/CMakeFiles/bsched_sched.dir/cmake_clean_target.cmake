file(REMOVE_RECURSE
  "libbsched_sched.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/AverageWeighter.cpp" "src/sched/CMakeFiles/bsched_sched.dir/AverageWeighter.cpp.o" "gcc" "src/sched/CMakeFiles/bsched_sched.dir/AverageWeighter.cpp.o.d"
  "/root/repo/src/sched/BalancedWeighter.cpp" "src/sched/CMakeFiles/bsched_sched.dir/BalancedWeighter.cpp.o" "gcc" "src/sched/CMakeFiles/bsched_sched.dir/BalancedWeighter.cpp.o.d"
  "/root/repo/src/sched/ListScheduler.cpp" "src/sched/CMakeFiles/bsched_sched.dir/ListScheduler.cpp.o" "gcc" "src/sched/CMakeFiles/bsched_sched.dir/ListScheduler.cpp.o.d"
  "/root/repo/src/sched/Schedule.cpp" "src/sched/CMakeFiles/bsched_sched.dir/Schedule.cpp.o" "gcc" "src/sched/CMakeFiles/bsched_sched.dir/Schedule.cpp.o.d"
  "/root/repo/src/sched/TraditionalWeighter.cpp" "src/sched/CMakeFiles/bsched_sched.dir/TraditionalWeighter.cpp.o" "gcc" "src/sched/CMakeFiles/bsched_sched.dir/TraditionalWeighter.cpp.o.d"
  "/root/repo/src/sched/Weighter.cpp" "src/sched/CMakeFiles/bsched_sched.dir/Weighter.cpp.o" "gcc" "src/sched/CMakeFiles/bsched_sched.dir/Weighter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dag/CMakeFiles/bsched_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/bsched_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bsched_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for bsched_sched.
# This may be replaced when dependencies are built.

# Empty dependencies file for bsched_stats.
# This may be replaced when dependencies are built.

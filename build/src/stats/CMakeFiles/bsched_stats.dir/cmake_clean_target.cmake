file(REMOVE_RECURSE
  "libbsched_stats.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bsched_stats.dir/Bootstrap.cpp.o"
  "CMakeFiles/bsched_stats.dir/Bootstrap.cpp.o.d"
  "libbsched_stats.a"
  "libbsched_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

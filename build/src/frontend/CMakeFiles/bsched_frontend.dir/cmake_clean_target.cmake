file(REMOVE_RECURSE
  "libbsched_frontend.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bsched_frontend.dir/KernelLang.cpp.o"
  "CMakeFiles/bsched_frontend.dir/KernelLang.cpp.o.d"
  "libbsched_frontend.a"
  "libbsched_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bsched_frontend.
# This may be replaced when dependencies are built.

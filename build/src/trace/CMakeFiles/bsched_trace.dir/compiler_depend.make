# Empty compiler generated dependencies file for bsched_trace.
# This may be replaced when dependencies are built.

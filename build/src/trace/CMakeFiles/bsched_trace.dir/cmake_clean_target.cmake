file(REMOVE_RECURSE
  "libbsched_trace.a"
)

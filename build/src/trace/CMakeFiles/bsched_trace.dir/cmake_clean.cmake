file(REMOVE_RECURSE
  "CMakeFiles/bsched_trace.dir/TraceFormation.cpp.o"
  "CMakeFiles/bsched_trace.dir/TraceFormation.cpp.o.d"
  "libbsched_trace.a"
  "libbsched_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

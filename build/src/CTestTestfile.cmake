# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("ir")
subdirs("parser")
subdirs("frontend")
subdirs("trace")
subdirs("dag")
subdirs("sched")
subdirs("regalloc")
subdirs("sim")
subdirs("stats")
subdirs("workload")
subdirs("pipeline")

# Empty compiler generated dependencies file for bsched_parser.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libbsched_parser.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bsched_parser.dir/Lexer.cpp.o"
  "CMakeFiles/bsched_parser.dir/Lexer.cpp.o.d"
  "CMakeFiles/bsched_parser.dir/Parser.cpp.o"
  "CMakeFiles/bsched_parser.dir/Parser.cpp.o.d"
  "libbsched_parser.a"
  "libbsched_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsched_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

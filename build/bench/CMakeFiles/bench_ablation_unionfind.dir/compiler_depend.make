# Empty compiler generated dependencies file for bench_ablation_unionfind.
# This may be replaced when dependencies are built.

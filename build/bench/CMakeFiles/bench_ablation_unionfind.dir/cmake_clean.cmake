file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_unionfind.dir/bench_ablation_unionfind.cpp.o"
  "CMakeFiles/bench_ablation_unionfind.dir/bench_ablation_unionfind.cpp.o.d"
  "bench_ablation_unionfind"
  "bench_ablation_unionfind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_unionfind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

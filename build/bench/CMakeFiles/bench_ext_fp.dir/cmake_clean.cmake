file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_fp.dir/bench_ext_fp.cpp.o"
  "CMakeFiles/bench_ext_fp.dir/bench_ext_fp.cpp.o.d"
  "bench_ext_fp"
  "bench_ext_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ext_fp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_weights.dir/bench_table1_weights.cpp.o"
  "CMakeFiles/bench_table1_weights.dir/bench_table1_weights.cpp.o.d"
  "bench_table1_weights"
  "bench_table1_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_average.dir/bench_ablation_average.cpp.o"
  "CMakeFiles/bench_ablation_average.dir/bench_ablation_average.cpp.o.d"
  "bench_ablation_average"
  "bench_ablation_average.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_average.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_average.
# This may be replaced when dependencies are built.

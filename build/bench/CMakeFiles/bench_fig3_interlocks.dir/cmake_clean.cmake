file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_interlocks.dir/bench_fig3_interlocks.cpp.o"
  "CMakeFiles/bench_fig3_interlocks.dir/bench_fig3_interlocks.cpp.o.d"
  "bench_fig3_interlocks"
  "bench_fig3_interlocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_interlocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig3_interlocks.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_renaming.dir/bench_ablation_renaming.cpp.o"
  "CMakeFiles/bench_ablation_renaming.dir/bench_ablation_renaming.cpp.o.d"
  "bench_ablation_renaming"
  "bench_ablation_renaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_renaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

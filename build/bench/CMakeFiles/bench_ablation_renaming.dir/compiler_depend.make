# Empty compiler generated dependencies file for bench_ablation_renaming.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_superscalar.dir/bench_ext_superscalar.cpp.o"
  "CMakeFiles/bench_ext_superscalar.dir/bench_ext_superscalar.cpp.o.d"
  "bench_ext_superscalar"
  "bench_ext_superscalar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_superscalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ext_superscalar.
# This may be replaced when dependencies are built.

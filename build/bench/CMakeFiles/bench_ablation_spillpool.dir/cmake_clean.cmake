file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_spillpool.dir/bench_ablation_spillpool.cpp.o"
  "CMakeFiles/bench_ablation_spillpool.dir/bench_ablation_spillpool.cpp.o.d"
  "bench_ablation_spillpool"
  "bench_ablation_spillpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_spillpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

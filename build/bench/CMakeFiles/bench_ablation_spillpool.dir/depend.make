# Empty dependencies file for bench_ablation_spillpool.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_mdg.dir/bench_table3_mdg.cpp.o"
  "CMakeFiles/bench_table3_mdg.dir/bench_table3_mdg.cpp.o.d"
  "bench_table3_mdg"
  "bench_table3_mdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_mdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ext_superblock.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_superblock.dir/bench_ext_superblock.cpp.o"
  "CMakeFiles/bench_ext_superblock.dir/bench_ext_superblock.cpp.o.d"
  "bench_ext_superblock"
  "bench_ext_superblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_superblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_scaling.dir/bench_perf_scaling.cpp.o"
  "CMakeFiles/bench_perf_scaling.dir/bench_perf_scaling.cpp.o.d"
  "bench_perf_scaling"
  "bench_perf_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_perf_scaling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_spills.dir/bench_table4_spills.cpp.o"
  "CMakeFiles/bench_table4_spills.dir/bench_table4_spills.cpp.o.d"
  "bench_table4_spills"
  "bench_table4_spills.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_spills.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_known_latency.dir/bench_ext_known_latency.cpp.o"
  "CMakeFiles/bench_ext_known_latency.dir/bench_ext_known_latency.cpp.o.d"
  "bench_ext_known_latency"
  "bench_ext_known_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_known_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ext_known_latency.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_n30.dir/bench_table5_n30.cpp.o"
  "CMakeFiles/bench_table5_n30.dir/bench_table5_n30.cpp.o.d"
  "bench_table5_n30"
  "bench_table5_n30.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_n30.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

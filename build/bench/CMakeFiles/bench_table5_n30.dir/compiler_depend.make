# Empty compiler generated dependencies file for bench_table5_n30.
# This may be replaced when dependencies are built.

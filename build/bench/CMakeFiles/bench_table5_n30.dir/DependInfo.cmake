
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table5_n30.cpp" "bench/CMakeFiles/bench_table5_n30.dir/bench_table5_n30.cpp.o" "gcc" "bench/CMakeFiles/bench_table5_n30.dir/bench_table5_n30.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/bsched_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/regalloc/CMakeFiles/bsched_regalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bsched_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/bsched_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/bsched_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bsched_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bsched_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/bsched_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bsched_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for bench_table2_unlimited.
# This may be replaced when dependencies are built.

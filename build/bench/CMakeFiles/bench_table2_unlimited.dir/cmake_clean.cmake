file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_unlimited.dir/bench_table2_unlimited.cpp.o"
  "CMakeFiles/bench_table2_unlimited.dir/bench_table2_unlimited.cpp.o.d"
  "bench_table2_unlimited"
  "bench_table2_unlimited.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_unlimited.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

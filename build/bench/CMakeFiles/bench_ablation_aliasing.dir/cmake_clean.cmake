file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_aliasing.dir/bench_ablation_aliasing.cpp.o"
  "CMakeFiles/bench_ablation_aliasing.dir/bench_ablation_aliasing.cpp.o.d"
  "bench_ablation_aliasing"
  "bench_ablation_aliasing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_aliasing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

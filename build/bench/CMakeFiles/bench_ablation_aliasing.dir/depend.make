# Empty dependencies file for bench_ablation_aliasing.
# This may be replaced when dependencies are built.

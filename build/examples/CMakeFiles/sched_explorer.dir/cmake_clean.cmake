file(REMOVE_RECURSE
  "CMakeFiles/sched_explorer.dir/sched_explorer.cpp.o"
  "CMakeFiles/sched_explorer.dir/sched_explorer.cpp.o.d"
  "sched_explorer"
  "sched_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

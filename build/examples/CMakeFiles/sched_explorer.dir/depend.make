# Empty dependencies file for sched_explorer.
# This may be replaced when dependencies are built.

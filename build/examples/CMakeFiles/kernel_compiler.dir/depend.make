# Empty dependencies file for kernel_compiler.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/kernel_compiler.dir/kernel_compiler.cpp.o"
  "CMakeFiles/kernel_compiler.dir/kernel_compiler.cpp.o.d"
  "kernel_compiler"
  "kernel_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

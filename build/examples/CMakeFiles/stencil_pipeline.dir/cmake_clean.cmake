file(REMOVE_RECURSE
  "CMakeFiles/stencil_pipeline.dir/stencil_pipeline.cpp.o"
  "CMakeFiles/stencil_pipeline.dir/stencil_pipeline.cpp.o.d"
  "stencil_pipeline"
  "stencil_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

//===- tests/GovernorTest.cpp - Resource governance + fail points ---------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// The resource-governance acceptance properties (DESIGN.md §3i): budgets
// admit or trip deterministically, overruns surface as structured BS80x
// diagnostics, the degradation ladder lands where it should and records
// the level, fail points inject faults reproducibly, and a throwing task
// can never deadlock the thread pool or silently lose an experiment cell.
//
//===----------------------------------------------------------------------===//

#include "ir/IrPrinter.h"
#include "obs/Metrics.h"
#include "parser/Parser.h"
#include "pipeline/ExperimentEngine.h"
#include "pipeline/Sweep.h"
#include "support/FailPoint.h"
#include "support/ResourceGovernor.h"
#include "support/ThreadPool.h"
#include "workload/PerfectClub.h"

#include <atomic>
#include <stdexcept>

#include <gtest/gtest.h>

using namespace bsched;

namespace {

WorkloadOptions smallWorkload() {
  WorkloadOptions W;
  W.UnrollFactor = 1;
  return W;
}

SimulationConfig smallSim() {
  SimulationConfig Sim;
  Sim.NumRuns = 2;
  Sim.NumResamples = 4;
  return Sim;
}

/// Largest block of \p F, in instructions.
uint64_t maxBlockSize(const Function &F) {
  uint64_t Max = 0;
  for (const BasicBlock &BB : F)
    Max = std::max<uint64_t>(Max, BB.size());
  return Max;
}

DiagCode firstCode(const std::vector<Diagnostic> &Diags) {
  return Diags.empty() ? DiagCode::Unknown : Diags.front().Code;
}

/// First non-wrapper error code of a failed sweep kernel.
DiagCode firstSweepCode(const SweepKernelOutcome &K) {
  for (const Diagnostic &D : K.Errors)
    if (D.isError() && D.Code != DiagCode::SweepKernelFailed)
      return D.Code;
  return DiagCode::Unknown;
}

} // namespace

//===----------------------------------------------------------------------===
// ResourceGovernor units
//===----------------------------------------------------------------------===

TEST(GovernorTest, DefaultBudgetIsInactive) {
  ResourceBudget Budget;
  EXPECT_FALSE(Budget.active());
  ResourceGovernor Gov(Budget);
  EXPECT_FALSE(Gov.active());
  for (int I = 0; I != 1000; ++I)
    EXPECT_TRUE(Gov.poll());
  EXPECT_TRUE(Gov.admit(BudgetKind::DagEdges, ~0ull));
  EXPECT_FALSE(Gov.tripped());
}

TEST(GovernorTest, PollTripsOnTickBudgetAndStaysTripped) {
  ResourceBudget Budget;
  Budget.MaxTicks = 3;
  ResourceGovernor Gov(Budget);
  EXPECT_TRUE(Gov.poll());
  EXPECT_TRUE(Gov.poll());
  EXPECT_TRUE(Gov.poll());
  EXPECT_FALSE(Gov.poll());
  EXPECT_TRUE(Gov.tripped());
  EXPECT_EQ(Gov.trippedKind(), BudgetKind::Ticks);
  // Sticky: every further poll and admission refuses.
  EXPECT_FALSE(Gov.poll());
  EXPECT_FALSE(Gov.admit(BudgetKind::DagEdges, 0));
  EXPECT_EQ(Gov.diagnostic("function 'f'").Code,
            DiagCode::GovernorTickBudgetExceeded);
}

TEST(GovernorTest, AdmitTripsPerKindWithValueAndLimit) {
  struct Case {
    BudgetKind Kind;
    DiagCode Code;
  };
  const Case Cases[] = {
      {BudgetKind::BlockInstructions, DiagCode::GovernorBlockTooLarge},
      {BudgetKind::DagEdges, DiagCode::GovernorDagTooDense},
      {BudgetKind::ClosureBits, DiagCode::GovernorClosureTooLarge},
      {BudgetKind::SpillSlots, DiagCode::GovernorSpillBudgetExceeded},
  };
  for (const Case &C : Cases) {
    ResourceBudget Budget;
    switch (C.Kind) {
    case BudgetKind::BlockInstructions:
      Budget.MaxInstructionsPerBlock = 10;
      break;
    case BudgetKind::DagEdges:
      Budget.MaxDagEdges = 10;
      break;
    case BudgetKind::ClosureBits:
      Budget.MaxClosureBits = 10;
      break;
    case BudgetKind::SpillSlots:
      Budget.MaxSpillSlots = 10;
      break;
    default:
      break;
    }
    ResourceGovernor Gov(Budget);
    EXPECT_TRUE(Gov.admit(C.Kind, 10)); // At the limit: admitted.
    EXPECT_FALSE(Gov.admit(C.Kind, 11));
    EXPECT_TRUE(Gov.tripped());
    EXPECT_EQ(Gov.trippedKind(), C.Kind);
    EXPECT_EQ(Gov.trippedValue(), 11u);
    EXPECT_EQ(Gov.trippedLimit(), 10u);
    EXPECT_EQ(Gov.diagnostic("block 'b'").Code, C.Code);
    EXPECT_TRUE(isBudgetDiagCode(C.Code));
  }
}

TEST(GovernorTest, BeginAttemptResetsTripForDegradedRetry) {
  ResourceBudget Budget;
  Budget.MaxTicks = 2;
  ResourceGovernor Gov(Budget);
  while (Gov.poll())
    ;
  EXPECT_TRUE(Gov.tripped());
  EXPECT_EQ(Gov.ticks(), 3u);
  Gov.beginAttempt();
  EXPECT_FALSE(Gov.tripped());
  EXPECT_EQ(Gov.ticks(), 0u);
  EXPECT_TRUE(Gov.poll());
}

TEST(GovernorTest, BudgetDiagCodeRange) {
  EXPECT_TRUE(isBudgetDiagCode(DiagCode::GovernorDeadlineExceeded));
  EXPECT_TRUE(isBudgetDiagCode(DiagCode::GovernorSpillBudgetExceeded));
  EXPECT_FALSE(isBudgetDiagCode(DiagCode::InjectedFault));
  EXPECT_FALSE(isBudgetDiagCode(DiagCode::PipelineCertificationFailed));
  EXPECT_EQ(budgetDiagCode(BudgetKind::Deadline),
            DiagCode::GovernorDeadlineExceeded);
  EXPECT_EQ(budgetKindName(BudgetKind::ClosureBits), "closure-bits");
}

//===----------------------------------------------------------------------===
// Fail-point registry units
//===----------------------------------------------------------------------===

TEST(FailPointTest, KeyedEvaluationIsAPureFunction) {
  if (!FailPointRegistry::compiledIn())
    GTEST_SKIP() << "fail points compiled out (BSCHED_NO_FAILPOINTS)";
  FailPointRegistry &Reg = FailPointRegistry::instance();
  Reg.disableAll();
  ScopedFailPoint Arm("dag-build", 0.5, 42);

  // Same key, same verdict, every time; across keys roughly half fire.
  unsigned Hits = 0;
  for (uint64_t Key = 0; Key != 256; ++Key) {
    bool First = Reg.shouldFail("dag-build", Key);
    for (int Rep = 0; Rep != 3; ++Rep)
      EXPECT_EQ(Reg.shouldFail("dag-build", Key), First);
    Hits += First;
  }
  EXPECT_GT(Hits, 64u);
  EXPECT_LT(Hits, 192u);
  EXPECT_GT(Reg.evaluations(), 0u);
  EXPECT_GT(Reg.hits(), 0u);
}

TEST(FailPointTest, ProbabilityEndpoints) {
  if (!FailPointRegistry::compiledIn())
    GTEST_SKIP() << "fail points compiled out (BSCHED_NO_FAILPOINTS)";
  FailPointRegistry &Reg = FailPointRegistry::instance();
  Reg.disableAll();
  {
    ScopedFailPoint Always("sim", 1.0, 7);
    for (uint64_t Key = 0; Key != 32; ++Key)
      EXPECT_TRUE(Reg.shouldFail("sim", Key));
  }
  {
    ScopedFailPoint Never("sim", 0.0, 7);
    for (uint64_t Key = 0; Key != 32; ++Key)
      EXPECT_FALSE(Reg.shouldFail("sim", Key));
  }
  // Unarmed sites never fire and the scoped arming restored that.
  EXPECT_FALSE(Reg.shouldFail("sim", 1));
  EXPECT_FALSE(anyFailPointsEnabled());
}

TEST(FailPointTest, ParseSpecArmsAndReportsErrors) {
  if (!FailPointRegistry::compiledIn())
    GTEST_SKIP() << "fail points compiled out (BSCHED_NO_FAILPOINTS)";
  FailPointRegistry &Reg = FailPointRegistry::instance();
  Reg.disableAll();
  EXPECT_TRUE(Reg.parseSpec("regalloc:1:9,sim:0.25:13"));
  EXPECT_TRUE(anyFailPointsEnabled());
  EXPECT_TRUE(Reg.shouldFail("regalloc", 3));

  std::string Error;
  EXPECT_FALSE(Reg.parseSpec("regalloc:not-a-number:1", &Error));
  EXPECT_FALSE(Error.empty());
  Reg.disableAll();
  EXPECT_FALSE(anyFailPointsEnabled());
}

TEST(FailPointTest, DiagnosticIsStructuredBS810) {
  Diagnostic D = failPointDiagnostic(failpoints::RegAlloc);
  EXPECT_EQ(D.Code, DiagCode::InjectedFault);
  EXPECT_TRUE(D.isError());
  EXPECT_NE(D.Message.find("regalloc"), std::string::npos);
}

//===----------------------------------------------------------------------===
// ThreadPool hardening: throwing tasks are captured, never lost
//===----------------------------------------------------------------------===

TEST(ThreadPoolFaultTest, ThrowingTaskNeitherDeadlocksNorLosesWork) {
  ThreadPool Pool(4);
  std::atomic<unsigned> Completed{0};
  for (int I = 0; I != 16; ++I)
    Pool.run([&Completed, I] {
      if (I % 4 == 0)
        throw std::runtime_error("task " + std::to_string(I) + " died");
      Completed.fetch_add(1);
    });
  Pool.wait(); // Must return despite the throwing tasks.
  EXPECT_EQ(Completed.load(), 12u);
  EXPECT_EQ(Pool.faultCount(), 4u);
  std::vector<std::string> Faults = Pool.takeFaults();
  ASSERT_EQ(Faults.size(), 4u);
  for (const std::string &F : Faults)
    EXPECT_NE(F.find("died"), std::string::npos);
  EXPECT_EQ(Pool.faultCount(), 0u); // takeFaults drained them.
}

TEST(ThreadPoolFaultTest, InlinePoolCapturesThrowsToo) {
  ThreadPool Pool(1);
  Pool.run([] { throw std::runtime_error("inline death"); });
  Pool.wait();
  EXPECT_EQ(Pool.faultCount(), 1u);
}

TEST(ThreadPoolFaultTest, PoolTaskFailPointIsCaptured) {
  if (!FailPointRegistry::compiledIn())
    GTEST_SKIP() << "fail points compiled out (BSCHED_NO_FAILPOINTS)";
  FailPointRegistry::instance().disableAll();
  ScopedFailPoint Arm(failpoints::PoolTask, 1.0, 3);
  ThreadPool Pool(2);
  std::atomic<unsigned> Ran{0};
  for (int I = 0; I != 4; ++I)
    Pool.run([&Ran] { Ran.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 0u); // Every task faulted at entry.
  EXPECT_EQ(Pool.faultCount(), 4u);
}

TEST(ThreadPoolFaultTest, ParallelForEachSurvivesThrowingBody) {
  for (unsigned Workers : {1u, 4u}) {
    ThreadPool Pool(Workers);
    std::vector<std::atomic<char>> Done(32);
    parallelForEach(Pool, Done.size(), [&Done](size_t I) {
      if (I == 7)
        throw std::runtime_error("body 7 died");
      Done[I].store(1);
    });
    for (size_t I = 0; I != Done.size(); ++I)
      EXPECT_EQ(Done[I].load(), I == 7 ? 0 : 1) << "index " << I;
    EXPECT_EQ(Pool.faultCount(), 1u);
  }
}

//===----------------------------------------------------------------------===
// Pipeline governance: admission, structured failures, the ladder
//===----------------------------------------------------------------------===

TEST(PipelineGovernorTest, BlockBudgetIsAHardStructuredFailure) {
  Function F = buildBenchmark(Benchmark::TRACK, smallWorkload());
  PipelineConfig Config;
  Config.Budget.MaxInstructionsPerBlock = 4;
  Config.Budget.Degrade = true; // No ladder rung shrinks a block.
  ErrorOr<CompiledFunction> Result = runPipeline(F, Config);
  ASSERT_FALSE(Result.has_value());
  EXPECT_EQ(firstCode(Result.errors()), DiagCode::GovernorBlockTooLarge);
  EXPECT_NE(Result.errors().front().formatted().find("BS802"),
            std::string::npos);
}

TEST(PipelineGovernorTest, TickBudgetFailureIsDeterministic) {
  Function F = buildBenchmark(Benchmark::TRACK, smallWorkload());
  PipelineConfig Config;
  Config.Budget.MaxTicks = 20;
  Config.Budget.Degrade = false;
  ErrorOr<CompiledFunction> A = runPipeline(F, Config);
  ErrorOr<CompiledFunction> B = runPipeline(F, Config);
  ASSERT_FALSE(A.has_value());
  ASSERT_FALSE(B.has_value());
  EXPECT_EQ(firstCode(A.errors()), DiagCode::GovernorTickBudgetExceeded);
  EXPECT_EQ(A.errorText(), B.errorText());
}

TEST(PipelineGovernorTest, ClosureBudgetDegradesExactToUnionFind) {
  Function F = buildBenchmark(Benchmark::MDG, smallWorkload());
  uint64_t WorstBits = ResourceBudget::closureBitsFor(maxBlockSize(F));

  PipelineConfig Config;
  Config.Policy = SchedulerPolicy::Balanced;
  Config.Budget.MaxClosureBits = WorstBits - 1;
  Config.Budget.Degrade = true;
  ErrorOr<CompiledFunction> Degraded = runPipeline(F, Config);
  ASSERT_TRUE(Degraded.has_value()) << Degraded.errorText();
  EXPECT_EQ(Degraded->Degradation, DegradationLevel::UnionFindChances);

  // The degraded result is bit-identical to compiling under the union-find
  // policy directly — degradation is a policy substitution, not a new
  // code path.
  PipelineConfig Direct;
  Direct.Policy = SchedulerPolicy::BalancedUnionFind;
  ErrorOr<CompiledFunction> Reference = runPipeline(F, Direct);
  ASSERT_TRUE(Reference.has_value());
  EXPECT_EQ(printFunction(Degraded->Compiled),
            printFunction(Reference->Compiled));
  EXPECT_EQ(Reference->Degradation, DegradationLevel::None);

  // A budget the kernel fits compiles exactly as configured. Note the
  // generous margin: the second scheduling pass re-weights blocks after
  // spill insertion, so the exact bit requirement exceeds the pre-spill
  // WorstBits.
  PipelineConfig Roomy = Config;
  Roomy.Budget.MaxClosureBits = uint64_t(1) << 30;
  ErrorOr<CompiledFunction> Fits = runPipeline(F, Roomy);
  ASSERT_TRUE(Fits.has_value());
  EXPECT_EQ(Fits->Degradation, DegradationLevel::None);
}

TEST(PipelineGovernorTest, ClosureBudgetWithoutDegradeFailsBS804) {
  Function F = buildBenchmark(Benchmark::MDG, smallWorkload());
  PipelineConfig Config;
  Config.Policy = SchedulerPolicy::Balanced;
  Config.Budget.MaxClosureBits = 8;
  Config.Budget.Degrade = false;
  ErrorOr<CompiledFunction> Result = runPipeline(F, Config);
  ASSERT_FALSE(Result.has_value());
  EXPECT_EQ(firstCode(Result.errors()), DiagCode::GovernorClosureTooLarge);
}

TEST(PipelineGovernorTest, SpillBudgetTripsOnHighPressureKernel) {
  // QCD2 is the suite's highest register pressure; it must spill for the
  // budget to have anything to refuse.
  Function F = buildBenchmark(Benchmark::QCD2, WorkloadOptions{});
  ErrorOr<CompiledFunction> Free = runPipeline(F, PipelineConfig());
  ASSERT_TRUE(Free.has_value());
  ASSERT_GT(Free->StaticSpills, 0u)
      << "QCD2 no longer spills; pick another kernel for this test";

  PipelineConfig Config;
  Config.Budget.MaxSpillSlots = 1;
  Config.Budget.Degrade = false;
  ErrorOr<CompiledFunction> Result = runPipeline(F, Config);
  ASSERT_FALSE(Result.has_value());
  EXPECT_EQ(firstCode(Result.errors()),
            DiagCode::GovernorSpillBudgetExceeded);
}

#ifndef BSCHED_NO_OBS
TEST(PipelineGovernorTest, TickLadderLandsOnCertifyOff) {
  Function F = buildBenchmark(Benchmark::TRACK, smallWorkload());

  // Price one certify-on and one certify-off compile in ticks, then pick a
  // budget between the two: the first attempt must trip, the certify-off
  // rung must fit. (Traditional has no union-find rung, so the ladder goes
  // straight to certify-off.)
  auto MeasureTicks = [&](bool Certify) {
    MetricRegistry Reg;
    PipelineConfig Config;
    Config.Policy = SchedulerPolicy::Traditional;
    Config.Certify = Certify;
    Config.Budget.MaxTicks = ~0ull >> 1;
    Config.Obs.Metrics = &Reg;
    ErrorOr<CompiledFunction> Result = runPipeline(F, Config);
    EXPECT_TRUE(Result.has_value());
    return Reg.snapshot().Counters.at("bsched.governor.ticks");
  };
  uint64_t FullTicks = MeasureTicks(true);
  uint64_t OffTicks = MeasureTicks(false);
  ASSERT_GT(FullTicks, OffTicks + 1)
      << "certification no longer polls enough to price";

  MetricRegistry Reg;
  PipelineConfig Config;
  Config.Policy = SchedulerPolicy::Traditional;
  Config.Budget.MaxTicks = (FullTicks + OffTicks) / 2;
  Config.Obs.Metrics = &Reg;
  ErrorOr<CompiledFunction> Result = runPipeline(F, Config);
  ASSERT_TRUE(Result.has_value()) << Result.errorText();
  EXPECT_EQ(Result->Degradation, DegradationLevel::CertifyOff);

  MetricSnapshot Snap = Reg.snapshot();
  EXPECT_EQ(Snap.Counters.at("bsched.governor.governed_kernels"), 1u);
  EXPECT_EQ(Snap.Counters.at("bsched.governor.degraded_certify_off"), 1u);

  // Deterministic: the same budget lands on the same rung with the same
  // code, twice.
  ErrorOr<CompiledFunction> Again = runPipeline(F, Config);
  ASSERT_TRUE(Again.has_value());
  EXPECT_EQ(Again->Degradation, DegradationLevel::CertifyOff);
  EXPECT_EQ(printFunction(Result->Compiled), printFunction(Again->Compiled));
}

TEST(PipelineGovernorTest, BudgetFailureCountsInMetrics) {
  Function F = buildBenchmark(Benchmark::TRACK, smallWorkload());
  MetricRegistry Reg;
  PipelineConfig Config;
  Config.Budget.MaxInstructionsPerBlock = 1;
  Config.Obs.Metrics = &Reg;
  EXPECT_FALSE(runPipeline(F, Config).has_value());
  MetricSnapshot Snap = Reg.snapshot();
  EXPECT_EQ(Snap.Counters.at("bsched.governor.budget_failures"), 1u);
  EXPECT_EQ(Snap.Counters.at("bsched.governor.governed_kernels"), 1u);
}
#endif // BSCHED_NO_OBS

//===----------------------------------------------------------------------===
// Governed parsing
//===----------------------------------------------------------------------===

TEST(ParserGovernorTest, OversizedBlockIsAStructuredParseFailure) {
  const char *Text = R"(func @big {
block body freq 1 {
  %i0 = li 1
  %i1 = li 2
  %i2 = addi %i0, 1
  %i3 = addi %i1, 2
  %i4 = add %i2, %i3
  ret
}
})";
  ResourceBudget Budget;
  Budget.MaxInstructionsPerBlock = 3;
  ResourceGovernor Gov(Budget);
  ParseResult Governed = parseIr(Text, &Gov);
  EXPECT_FALSE(Governed.ok());
  EXPECT_TRUE(Gov.tripped());
  bool SawBudgetCode = false;
  for (const Diagnostic &D : Governed.Diags)
    SawBudgetCode |= D.Code == DiagCode::GovernorBlockTooLarge;
  EXPECT_TRUE(SawBudgetCode);

  // The same text parses clean un-governed and under a roomy budget.
  EXPECT_TRUE(parseIr(Text).ok());
  ResourceGovernor Roomy(ResourceBudget{.MaxInstructionsPerBlock = 64});
  EXPECT_TRUE(parseIr(Text, &Roomy).ok());
}

//===----------------------------------------------------------------------===
// Engine integration: cache keys, cell faults, lost-cell backstop
//===----------------------------------------------------------------------===

TEST(EngineGovernorTest, CacheKeyIncludesBudget) {
  Function F = buildBenchmark(Benchmark::TRACK, smallWorkload());
  PipelineConfig A;
  PipelineConfig B;
  B.Budget.MaxTicks = 1000;
  PipelineConfig C;
  C.Budget.MaxTicks = 1000;
  C.Budget.Degrade = false;
  EXPECT_NE(experimentCacheKey(F, A), experimentCacheKey(F, B));
  EXPECT_NE(experimentCacheKey(F, B), experimentCacheKey(F, C));
  EXPECT_EQ(experimentCacheKey(F, B), experimentCacheKey(F, B));
}

TEST(EngineGovernorTest, EngineCellFaultIsIsolatedAndDeterministic) {
  if (!FailPointRegistry::compiledIn())
    GTEST_SKIP() << "fail points compiled out (BSCHED_NO_FAILPOINTS)";
  FailPointRegistry::instance().disableAll();
  ScopedFailPoint Arm(failpoints::EngineCell, 0.5, 11);

  std::vector<SweepEntry> Entries = perfectClubSweepEntries(smallWorkload());
  SweepOptions Serial;
  Serial.Jobs = 1;
  SweepOptions Parallel;
  Parallel.Jobs = 8;
  SweepResult A = runWorkloadSweep(Entries, NetworkSystem(2, 5), smallSim(),
                                   Serial);
  SweepResult B = runWorkloadSweep(Entries, NetworkSystem(2, 5), smallSim(),
                                   Parallel);

  // The fault is keyed by cell label: the same cells fault serially and in
  // parallel, and the rest still complete.
  EXPECT_TRUE(identicalSweepResults(A, B));
  EXPECT_GT(A.numFailed(), 0u) << "seed 11 no longer faults any label";
  EXPECT_GT(A.numSucceeded(), 0u) << "seed 11 faults every label";
  for (const SweepKernelOutcome &K : A.Kernels)
    if (!K.ok()) {
      EXPECT_EQ(firstSweepCode(K), DiagCode::InjectedFault);
    }
}

TEST(EngineGovernorTest, PoolLevelFaultNeverLosesACellSilently) {
  if (!FailPointRegistry::compiledIn())
    GTEST_SKIP() << "fail points compiled out (BSCHED_NO_FAILPOINTS)";
  FailPointRegistry::instance().disableAll();
  ScopedFailPoint Arm(failpoints::PoolTask, 1.0, 5);

  // Every pool task dies at entry, so every cell's slot would stay
  // default-constructed without the engine's backstop: each must come back
  // labelled with a structured BS811 diagnostic.
  std::vector<SweepEntry> Entries = perfectClubSweepEntries(smallWorkload());
  SweepOptions Options;
  Options.Jobs = 4;
  SweepResult Result = runWorkloadSweep(Entries, NetworkSystem(2, 5),
                                        smallSim(), Options);
  EXPECT_EQ(Result.numFailed(), Result.Kernels.size());
  for (const SweepKernelOutcome &K : Result.Kernels) {
    EXPECT_FALSE(K.Name.empty());
    EXPECT_EQ(firstSweepCode(K), DiagCode::EngineCellFault);
  }
}

//===----------------------------------------------------------------------===
// Sweep degradation: mixed budget overruns + injected faults
//===----------------------------------------------------------------------===

TEST(SweepGovernorTest, MixedBudgetAndFaultSweepIsDeterministic) {
  if (!FailPointRegistry::compiledIn())
    GTEST_SKIP() << "fail points compiled out (BSCHED_NO_FAILPOINTS)";
  FailPointRegistry::instance().disableAll();

  std::vector<SweepEntry> Entries = perfectClubSweepEntries(smallWorkload());

  // Split the suite by block size: kernels whose largest block exceeds the
  // median budget must fail BS802 at admission; the rest run under an
  // injected regalloc fault and either succeed or fail BS810.
  std::vector<uint64_t> Sizes;
  for (const SweepEntry &E : Entries)
    Sizes.push_back(maxBlockSize(E.Program));
  std::vector<uint64_t> Sorted = Sizes;
  std::sort(Sorted.begin(), Sorted.end());
  uint64_t Limit = Sorted[Sorted.size() / 2];
  unsigned ExpectOverBudget = 0;
  for (uint64_t S : Sizes)
    ExpectOverBudget += S > Limit;
  ASSERT_GT(ExpectOverBudget, 0u);
  ASSERT_LT(ExpectOverBudget, Entries.size());

  ScopedFailPoint Arm(failpoints::RegAlloc, 0.4, 17);
  SweepOptions Serial;
  Serial.Jobs = 1;
  Serial.Base.Budget.MaxInstructionsPerBlock = Limit;
  SweepOptions Parallel = Serial;
  Parallel.Jobs = 8;

  SweepResult A = runWorkloadSweep(Entries, CacheSystem(0.8, 2, 10),
                                   smallSim(), Serial);
  SweepResult B = runWorkloadSweep(Entries, CacheSystem(0.8, 2, 10),
                                   smallSim(), Parallel);
  EXPECT_TRUE(identicalSweepResults(A, B));

  unsigned OverBudget = 0;
  for (size_t I = 0; I != A.Kernels.size(); ++I) {
    const SweepKernelOutcome &K = A.Kernels[I];
    if (Sizes[I] > Limit) {
      // Admission failure, before any fail point can fire.
      ASSERT_FALSE(K.ok()) << K.Name;
      EXPECT_EQ(firstSweepCode(K), DiagCode::GovernorBlockTooLarge)
          << K.Name;
      ++OverBudget;
    } else if (!K.ok()) {
      EXPECT_EQ(firstSweepCode(K), DiagCode::InjectedFault) << K.Name;
    }
  }
  EXPECT_EQ(OverBudget, ExpectOverBudget);
  EXPECT_TRUE(A.degraded());
  EXPECT_NE(A.summary().find("kernels succeeded"), std::string::npos);
}

//===- tests/TestDagHelpers.h - Shared DAG construction helpers -*- C++ -*-==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for building hand-specified code DAGs (the paper's Figures 1, 4
/// and 7) in tests and benchmarks. The instructions are structurally valid
/// IR but dependence edges are added explicitly, so the DAG shape is
/// exactly the figure's, independent of the dependence analyzer.
///
//===----------------------------------------------------------------------===//

#ifndef BSCHED_TESTS_TESTDAGHELPERS_H
#define BSCHED_TESTS_TESTDAGHELPERS_H

#include "dag/DepDag.h"
#include "ir/BasicBlock.h"

#include <utility>
#include <vector>

namespace bsched::fixtures {

/// Builds a block whose instruction I is a load iff \p IsLoad[I]. Every
/// instruction uses private live-in registers and a private alias class so
/// the *automatic* dependence analyzer would find no edges; the caller adds
/// the figure's edges by hand.
inline BasicBlock makeFigureBlock(const std::vector<bool> &IsLoad) {
  BasicBlock BB("figure");
  for (unsigned I = 0; I != IsLoad.size(); ++I) {
    Reg Dst = Reg::makeVirtual(RegClass::Int, I);
    if (IsLoad[I]) {
      Reg Base = Reg::makeVirtual(RegClass::Int, 100 + I);
      BB.append(Instruction::makeLoad(Opcode::Load, Dst, Base, 0,
                                      static_cast<AliasClassId>(I)));
    } else {
      Reg Src = Reg::makeVirtual(RegClass::Int, 200 + I);
      BB.append(Instruction::makeBinaryImm(Opcode::AddI, Dst, Src,
                                           static_cast<int64_t>(I)));
    }
  }
  return BB;
}

/// Builds the DepDag for \p IsLoad with the given (from, to) data edges.
inline DepDag
makeFigureDag(const std::vector<bool> &IsLoad,
              const std::vector<std::pair<unsigned, unsigned>> &Edges) {
  BasicBlock BB = makeFigureBlock(IsLoad);
  DepDag Dag(BB);
  for (auto [From, To] : Edges)
    Dag.addEdge(From, To, DepKind::Data);
  return Dag;
}

/// The paper's Figure 1 DAG. Node order: L0=0, L1=1, X0=2, X1=3, X2=4,
/// X3=5, X4=6. L0 -> L1 -> X4; X0..X3 independent.
inline DepDag makeFigure1Dag() {
  return makeFigureDag(
      {true, true, false, false, false, false, false},
      {{0, 1}, {1, 6}});
}

/// The paper's Figure 4 DAG: L0=0, L1=1 and X0..X4 = 2..6, all mutually
/// independent.
inline DepDag makeFigure4Dag() {
  return makeFigureDag({true, true, false, false, false, false, false}, {});
}

/// Node numbering for the Figure 7 reconstruction (see DESIGN.md):
/// L1=0, L2=1, L3=2, L4=3, L5=4, L6=5, X1=6, X2=7, X3=8, X4=9.
/// Edges: L2->{L3, X1, X2}; L3->{L4, L5}; L5->L6; X3->X2; X4->X2.
/// Note X3/X4 precede X2 in the figure but our DepDag requires edges to
/// point forward in index order, so X2 is placed *after* X3/X4 here; we
/// instead order nodes L1 L2 L3 L4 L5 L6 X1 X3 X4 X2 and report indices.
struct Figure7 {
  static constexpr unsigned L1 = 0, L2 = 1, L3 = 2, L4 = 3, L5 = 4, L6 = 5,
                            X1 = 6, X3 = 7, X4 = 8, X2 = 9;
};

/// Builds the Figure 7 reconstruction.
inline DepDag makeFigure7Dag() {
  using F = Figure7;
  return makeFigureDag(
      {true, true, true, true, true, true, false, false, false, false},
      {{F::L2, F::L3},
       {F::L2, F::X1},
       {F::L2, F::X2},
       {F::L3, F::L4},
       {F::L3, F::L5},
       {F::L5, F::L6},
       {F::X3, F::X2},
       {F::X4, F::X2}});
}

} // namespace bsched::fixtures

#endif // BSCHED_TESTS_TESTDAGHELPERS_H

//===- tests/IrTest.cpp - Unit tests for the IR library -------------------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Interpreter.h"
#include "ir/IrBuilder.h"
#include "ir/IrPrinter.h"
#include "ir/IrVerifier.h"
#include "ir/Opcode.h"
#include "ir/Reg.h"

#include <gtest/gtest.h>

using namespace bsched;

//===----------------------------------------------------------------------===
// Reg
//===----------------------------------------------------------------------===

TEST(RegTest, InvalidByDefault) {
  Reg R;
  EXPECT_FALSE(R.isValid());
  EXPECT_FALSE(R.isVirtual());
  EXPECT_FALSE(R.isPhysical());
  EXPECT_EQ(R.str(), "<invalid>");
}

TEST(RegTest, VirtualEncoding) {
  Reg R = Reg::makeVirtual(RegClass::Fp, 12);
  EXPECT_TRUE(R.isValid());
  EXPECT_TRUE(R.isVirtual());
  EXPECT_FALSE(R.isPhysical());
  EXPECT_EQ(R.regClass(), RegClass::Fp);
  EXPECT_EQ(R.id(), 12u);
  EXPECT_EQ(R.str(), "%f12");
}

TEST(RegTest, PhysicalEncoding) {
  Reg R = Reg::makePhysical(RegClass::Int, 3);
  EXPECT_TRUE(R.isPhysical());
  EXPECT_EQ(R.regClass(), RegClass::Int);
  EXPECT_EQ(R.str(), "$i3");
}

TEST(RegTest, EqualityDistinguishesSpaces) {
  EXPECT_EQ(Reg::makeVirtual(RegClass::Int, 1),
            Reg::makeVirtual(RegClass::Int, 1));
  EXPECT_NE(Reg::makeVirtual(RegClass::Int, 1),
            Reg::makePhysical(RegClass::Int, 1));
  EXPECT_NE(Reg::makeVirtual(RegClass::Int, 1),
            Reg::makeVirtual(RegClass::Fp, 1));
  EXPECT_NE(Reg::makeVirtual(RegClass::Int, 1),
            Reg::makeVirtual(RegClass::Int, 2));
}

//===----------------------------------------------------------------------===
// Opcode properties
//===----------------------------------------------------------------------===

TEST(OpcodeTest, NameRoundTripsForAllOpcodes) {
  for (unsigned I = 0; I != NumOpcodes; ++I) {
    Opcode Op = static_cast<Opcode>(I);
    std::optional<Opcode> Parsed = parseOpcode(opcodeName(Op));
    ASSERT_TRUE(Parsed.has_value()) << opcodeName(Op);
    EXPECT_EQ(*Parsed, Op);
  }
}

TEST(OpcodeTest, UnknownNameRejected) {
  EXPECT_FALSE(parseOpcode("bogus").has_value());
  EXPECT_FALSE(parseOpcode("").has_value());
}

TEST(OpcodeTest, LoadStoreClassification) {
  EXPECT_TRUE(isLoadOpcode(Opcode::Load));
  EXPECT_TRUE(isLoadOpcode(Opcode::FLoad));
  EXPECT_FALSE(isLoadOpcode(Opcode::Store));
  EXPECT_TRUE(isStoreOpcode(Opcode::FStore));
  EXPECT_TRUE(isMemoryOpcode(Opcode::Load));
  EXPECT_TRUE(isMemoryOpcode(Opcode::Store));
  EXPECT_FALSE(isMemoryOpcode(Opcode::Add));
}

TEST(OpcodeTest, TerminatorClassification) {
  EXPECT_TRUE(isTerminatorOpcode(Opcode::Jump));
  EXPECT_TRUE(isTerminatorOpcode(Opcode::Ret));
  EXPECT_TRUE(isTerminatorOpcode(Opcode::BranchZero));
  EXPECT_FALSE(isTerminatorOpcode(Opcode::Nop));
  EXPECT_FALSE(isTerminatorOpcode(Opcode::Load));
}

TEST(OpcodeTest, SourceClassTables) {
  EXPECT_EQ(opcodeNumSrcs(Opcode::FMadd), 3u);
  EXPECT_TRUE(opcodeSrcIsFp(Opcode::FMadd, 2));
  EXPECT_EQ(opcodeNumSrcs(Opcode::Store), 2u);
  EXPECT_FALSE(opcodeSrcIsFp(Opcode::Store, 0));
  EXPECT_TRUE(opcodeSrcIsFp(Opcode::FStore, 0));
  EXPECT_FALSE(opcodeSrcIsFp(Opcode::FStore, 1)); // Base address is int.
  EXPECT_TRUE(opcodeDestIsFp(Opcode::CvtIF));
  EXPECT_FALSE(opcodeDestIsFp(Opcode::CvtFI));
}

//===----------------------------------------------------------------------===
// Instruction
//===----------------------------------------------------------------------===

namespace {
Reg vi(unsigned Id) { return Reg::makeVirtual(RegClass::Int, Id); }
Reg vf(unsigned Id) { return Reg::makeVirtual(RegClass::Fp, Id); }
} // namespace

TEST(InstructionTest, BinaryShape) {
  Instruction I = Instruction::makeBinary(Opcode::Add, vi(0), vi(1), vi(2));
  EXPECT_TRUE(I.hasDest());
  EXPECT_EQ(I.dest(), vi(0));
  ASSERT_EQ(I.sources().size(), 2u);
  EXPECT_EQ(I.source(0), vi(1));
  EXPECT_EQ(I.source(1), vi(2));
  EXPECT_FALSE(I.isMemory());
  EXPECT_EQ(I.str(), "%i0 = add %i1, %i2");
}

TEST(InstructionTest, LoadShape) {
  Instruction I = Instruction::makeLoad(Opcode::FLoad, vf(3), vi(1), 16, 2);
  EXPECT_TRUE(I.isLoad());
  EXPECT_TRUE(I.isMemory());
  EXPECT_EQ(I.aliasClass(), 2);
  EXPECT_EQ(I.addressBase(), vi(1));
  EXPECT_EQ(I.imm(), 16);
  EXPECT_EQ(I.str(), "%f3 = fload [%i1 + 16] !2");
}

TEST(InstructionTest, StoreShape) {
  Instruction I = Instruction::makeStore(Opcode::Store, vi(5), vi(1), -8, 0);
  EXPECT_TRUE(I.isStore());
  EXPECT_FALSE(I.hasDest());
  EXPECT_EQ(I.storedValue(), vi(5));
  EXPECT_EQ(I.addressBase(), vi(1));
  EXPECT_EQ(I.str(), "store %i5, [%i1 - 8] !0");
}

TEST(InstructionTest, ImmediatesPrint) {
  EXPECT_EQ(Instruction::makeLoadImm(vi(0), -42).str(), "%i0 = li -42");
  EXPECT_EQ(Instruction::makeFLoadImm(vf(0), 0.5).str(), "%f0 = fli 0.5");
  EXPECT_EQ(Instruction::makeBinaryImm(Opcode::AddI, vi(1), vi(0), 8).str(),
            "%i1 = addi %i0, 8");
}

TEST(InstructionTest, TerminatorsPrint) {
  EXPECT_EQ(Instruction::makeJump(3).str(), "jump 3");
  EXPECT_EQ(Instruction::makeBranch(Opcode::BranchZero, vi(0), 1).str(),
            "bz %i0, 1");
  EXPECT_EQ(Instruction::makeRet().str(), "ret");
}

TEST(InstructionTest, SetImmRewrites) {
  Instruction I = Instruction::makeJump(0);
  I.setImm(7);
  EXPECT_EQ(I.imm(), 7);
}

TEST(InstructionTest, OperandRewrite) {
  Instruction I = Instruction::makeBinary(Opcode::FAdd, vf(0), vf(1), vf(2));
  I.setSource(1, vf(9));
  EXPECT_EQ(I.source(1), vf(9));
  I.setDest(vf(8));
  EXPECT_EQ(I.dest(), vf(8));
}

//===----------------------------------------------------------------------===
// BasicBlock / Function
//===----------------------------------------------------------------------===

TEST(BasicBlockTest, AppendAndIndices) {
  BasicBlock BB("body", 250.0);
  EXPECT_EQ(BB.append(Instruction::makeLoadImm(vi(0), 1)), 0u);
  EXPECT_EQ(BB.append(Instruction::makeLoadImm(vi(1), 2)), 1u);
  EXPECT_EQ(BB.size(), 2u);
  EXPECT_EQ(BB.name(), "body");
  EXPECT_DOUBLE_EQ(BB.frequency(), 250.0);
  EXPECT_FALSE(BB.hasTerminator());
  EXPECT_EQ(BB.schedulableSize(), 2u);
}

TEST(BasicBlockTest, TerminatorTracking) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 1));
  BB.append(Instruction::makeRet());
  EXPECT_TRUE(BB.hasTerminator());
  EXPECT_EQ(BB.schedulableSize(), 1u);
}

TEST(FunctionTest, VirtualRegFactoryAdvances) {
  Function F("f");
  Reg A = F.makeVirtualReg(RegClass::Int);
  Reg B = F.makeVirtualReg(RegClass::Int);
  Reg C = F.makeVirtualReg(RegClass::Fp);
  EXPECT_NE(A, B);
  EXPECT_EQ(C.regClass(), RegClass::Fp);
  EXPECT_EQ(C.id(), 0u); // Fp counter is independent of Int counter.
}

TEST(FunctionTest, ReserveVirtualRegAvoidsCollision) {
  Function F("f");
  F.reserveVirtualReg(RegClass::Int, 10);
  Reg Next = F.makeVirtualReg(RegClass::Int);
  EXPECT_EQ(Next.id(), 11u);
}

TEST(FunctionTest, AliasClassInterning) {
  Function F("f");
  AliasClassId A = F.getOrCreateAliasClass("x");
  AliasClassId B = F.getOrCreateAliasClass("y");
  EXPECT_NE(A, B);
  EXPECT_EQ(F.getOrCreateAliasClass("x"), A);
  EXPECT_EQ(F.aliasClassName(A), "x");
  EXPECT_EQ(F.numAliasClasses(), 2u);
}

TEST(FunctionTest, TotalInstructions) {
  Function F("f");
  BasicBlock &B0 = F.addBlock("a");
  BasicBlock &B1 = F.addBlock("b");
  B0.append(Instruction::makeLoadImm(vi(0), 1));
  B1.append(Instruction::makeLoadImm(vi(1), 2));
  B1.append(Instruction::makeRet());
  EXPECT_EQ(F.totalInstructions(), 3u);
  EXPECT_EQ(F.numBlocks(), 2u);
}

//===----------------------------------------------------------------------===
// IrBuilder
//===----------------------------------------------------------------------===

TEST(IrBuilderTest, EmitsWellFormedKernel) {
  Function F("kernel");
  BasicBlock &BB = F.addBlock("entry");
  IrBuilder B(F, BB);

  Reg Base = B.emitLoadImm(1000);
  Reg X = B.emitFLoad(Base, 0, F.getOrCreateAliasClass("a"));
  Reg Y = B.emitFLoad(Base, 8, F.getOrCreateAliasClass("a"));
  Reg Sum = B.emitBinary(Opcode::FAdd, X, Y);
  B.emitStore(Sum, Base, 16, F.getOrCreateAliasClass("b"));
  B.emitRet();

  EXPECT_EQ(BB.size(), 6u);
  EXPECT_TRUE(BB.hasTerminator());
  EXPECT_TRUE(verifyClean(verifyFunction(F)));
}

TEST(IrBuilderTest, StoreSelectsOpcodeByClass) {
  Function F("f");
  BasicBlock &BB = F.addBlock("b");
  IrBuilder B(F, BB);
  Reg Base = B.emitLoadImm(0);
  Reg IVal = B.emitLoadImm(1);
  Reg FVal = B.emitFLoadImm(1.0);
  B.emitStore(IVal, Base, 0, 0);
  B.emitStore(FVal, Base, 8, 0);
  EXPECT_EQ(BB[3].opcode(), Opcode::Store);
  EXPECT_EQ(BB[4].opcode(), Opcode::FStore);
}

//===----------------------------------------------------------------------===
// Verifier
//===----------------------------------------------------------------------===

TEST(VerifierTest, AcceptsValidBlock) {
  BasicBlock BB("ok");
  BB.append(Instruction::makeLoadImm(vi(0), 5));
  BB.append(Instruction::makeRet());
  EXPECT_TRUE(verifyClean(verifyBlock(BB)));
}

TEST(VerifierTest, RejectsOutOfRangeBranchTarget) {
  Function F("f");
  BasicBlock &BB = F.addBlock("b");
  BB.append(Instruction::makeJump(5));
  std::vector<Diagnostic> Errors = verifyFunction(F);
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_EQ(Errors[0].Code, DiagCode::VerifyBranchOutOfRange);
  EXPECT_NE(Errors[0].Message.find("out of range"), std::string::npos);
}

TEST(VerifierTest, AcceptsInRangeBranchTarget) {
  Function F("f");
  F.addBlock("a").append(Instruction::makeJump(1));
  F.addBlock("b").append(Instruction::makeRet());
  EXPECT_TRUE(verifyClean(verifyFunction(F)));
}

//===----------------------------------------------------------------------===
// Printer
//===----------------------------------------------------------------------===

TEST(PrinterTest, BlockFormat) {
  BasicBlock BB("loop", 42.0);
  BB.append(Instruction::makeLoadImm(vi(0), 7));
  std::string S = printBlock(BB);
  EXPECT_NE(S.find("block loop freq 42"), std::string::npos);
  EXPECT_NE(S.find("%i0 = li 7"), std::string::npos);
  EXPECT_NE(S.find("}"), std::string::npos);
}

TEST(PrinterTest, FunctionFormat) {
  Function F("main");
  F.addBlock("entry").append(Instruction::makeRet());
  std::string S = printFunction(F);
  EXPECT_EQ(S.find("func @main {"), 0u);
}

//===----------------------------------------------------------------------===
// Interpreter
//===----------------------------------------------------------------------===

TEST(InterpreterTest, IntegerArithmetic) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 6));
  BB.append(Instruction::makeLoadImm(vi(1), 7));
  BB.append(Instruction::makeBinary(Opcode::Mul, vi(2), vi(0), vi(1)));
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(3), vi(2), -2));
  Interpreter I;
  I.run(BB);
  EXPECT_EQ(I.getIntReg(vi(2)), 42);
  EXPECT_EQ(I.getIntReg(vi(3)), 40);
  EXPECT_EQ(I.instructionsExecuted(), 4u);
}

TEST(InterpreterTest, DivisionByZeroIsDefined) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 5));
  BB.append(Instruction::makeLoadImm(vi(1), 0));
  BB.append(Instruction::makeBinary(Opcode::Div, vi(2), vi(0), vi(1)));
  BB.append(Instruction::makeBinary(Opcode::Rem, vi(3), vi(0), vi(1)));
  Interpreter I;
  I.run(BB);
  EXPECT_EQ(I.getIntReg(vi(2)), 0);
  EXPECT_EQ(I.getIntReg(vi(3)), 0);
}

TEST(InterpreterTest, FloatingPointAndFMadd) {
  BasicBlock BB("b");
  BB.append(Instruction::makeFLoadImm(vf(0), 1.5));
  BB.append(Instruction::makeFLoadImm(vf(1), 2.0));
  BB.append(Instruction::makeFLoadImm(vf(2), 0.25));
  BB.append(Instruction::makeFMadd(vf(3), vf(0), vf(1), vf(2)));
  Interpreter I;
  I.run(BB);
  EXPECT_DOUBLE_EQ(I.getFpReg(vf(3)), 3.25);
}

TEST(InterpreterTest, MemoryRoundTrip) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 100));
  BB.append(Instruction::makeFLoadImm(vf(0), 9.75));
  BB.append(Instruction::makeStore(Opcode::FStore, vf(0), vi(0), 8, 1));
  BB.append(Instruction::makeLoad(Opcode::FLoad, vf(1), vi(0), 8, 1));
  Interpreter I;
  I.run(BB);
  EXPECT_DOUBLE_EQ(I.getFpReg(vf(1)), 9.75);
}

TEST(InterpreterTest, AliasClassesAreDisjoint) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 0));
  BB.append(Instruction::makeLoadImm(vi(1), 111));
  BB.append(Instruction::makeStore(Opcode::Store, vi(1), vi(0), 0, 1));
  BB.append(Instruction::makeLoad(Opcode::Load, vi(2), vi(0), 0, 2));
  Interpreter I;
  I.run(BB);
  // Class 2 never saw the store to class 1.
  EXPECT_NE(I.getIntReg(vi(2)), 111);
}

TEST(InterpreterTest, UninitializedReadsAreDeterministic) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 0));
  BB.append(Instruction::makeLoad(Opcode::Load, vi(1), vi(0), 64, 3));
  Interpreter A, B;
  A.run(BB);
  B.run(BB);
  EXPECT_EQ(A.getIntReg(vi(1)), B.getIntReg(vi(1)));
  EXPECT_EQ(A.getIntReg(vi(9)), B.getIntReg(vi(9))); // Never-written reg.
}

TEST(InterpreterTest, LiveInSeeding) {
  BasicBlock BB("b");
  BB.append(Instruction::makeBinary(Opcode::Add, vi(2), vi(0), vi(1)));
  Interpreter I;
  I.setIntReg(vi(0), 40);
  I.setIntReg(vi(1), 2);
  I.run(BB);
  EXPECT_EQ(I.getIntReg(vi(2)), 42);
}

TEST(InterpreterTest, StopsAtTerminator) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 1));
  BB.append(Instruction::makeRet());
  Interpreter I;
  I.run(BB);
  EXPECT_EQ(I.instructionsExecuted(), 1u);
}

TEST(InterpreterTest, MemoryImageExcluding) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 0));
  BB.append(Instruction::makeLoadImm(vi(1), 5));
  BB.append(Instruction::makeStore(Opcode::Store, vi(1), vi(0), 0, 1));
  BB.append(Instruction::makeStore(Opcode::Store, vi(1), vi(0), 0, 2));
  Interpreter I;
  I.run(BB);
  EXPECT_EQ(I.memoryImage().size(), 2u);
  Interpreter::MemoryImage Filtered = I.memoryImageExcluding(2);
  EXPECT_EQ(Filtered.size(), 1u);
  EXPECT_EQ(Filtered.begin()->first.first, 1);
}

TEST(InterpreterTest, ConversionOpcodes) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), -3));
  BB.append(Instruction::makeUnary(Opcode::CvtIF, vf(0), vi(0)));
  BB.append(Instruction::makeFLoadImm(vf(1), 2.9));
  BB.append(Instruction::makeUnary(Opcode::CvtFI, vi(1), vf(1)));
  BB.append(Instruction::makeBinary(Opcode::FSlt, vi(2), vf(0), vf(1)));
  Interpreter I;
  I.run(BB);
  EXPECT_DOUBLE_EQ(I.getFpReg(vf(0)), -3.0);
  EXPECT_EQ(I.getIntReg(vi(1)), 2);
  EXPECT_EQ(I.getIntReg(vi(2)), 1);
}

//===----------------------------------------------------------------------===
// Interpreter: remaining opcode coverage
//===----------------------------------------------------------------------===

TEST(InterpreterTest, BitwiseAndShiftOps) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 0b1100));
  BB.append(Instruction::makeLoadImm(vi(1), 0b1010));
  BB.append(Instruction::makeBinary(Opcode::And, vi(2), vi(0), vi(1)));
  BB.append(Instruction::makeBinary(Opcode::Or, vi(3), vi(0), vi(1)));
  BB.append(Instruction::makeBinary(Opcode::Xor, vi(4), vi(0), vi(1)));
  BB.append(Instruction::makeLoadImm(vi(5), 2));
  BB.append(Instruction::makeBinary(Opcode::Shl, vi(6), vi(0), vi(5)));
  BB.append(Instruction::makeBinary(Opcode::Shr, vi(7), vi(0), vi(5)));
  BB.append(Instruction::makeBinaryImm(Opcode::ShlI, vi(8), vi(0), 3));
  Interpreter I;
  I.run(BB);
  EXPECT_EQ(I.getIntReg(vi(2)), 0b1000);
  EXPECT_EQ(I.getIntReg(vi(3)), 0b1110);
  EXPECT_EQ(I.getIntReg(vi(4)), 0b0110);
  EXPECT_EQ(I.getIntReg(vi(6)), 0b110000);
  EXPECT_EQ(I.getIntReg(vi(7)), 0b11);
  EXPECT_EQ(I.getIntReg(vi(8)), 0b1100000);
}

TEST(InterpreterTest, ComparisonAndMoves) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), -3));
  BB.append(Instruction::makeLoadImm(vi(1), 5));
  BB.append(Instruction::makeBinary(Opcode::Slt, vi(2), vi(0), vi(1)));
  BB.append(Instruction::makeBinary(Opcode::Slt, vi(3), vi(1), vi(0)));
  BB.append(Instruction::makeUnary(Opcode::Move, vi(4), vi(1)));
  BB.append(Instruction::makeFLoadImm(vf(0), 2.5));
  BB.append(Instruction::makeUnary(Opcode::FMove, vf(1), vf(0)));
  BB.append(Instruction::makeUnary(Opcode::FNeg, vf(2), vf(0)));
  Interpreter I;
  I.run(BB);
  EXPECT_EQ(I.getIntReg(vi(2)), 1);
  EXPECT_EQ(I.getIntReg(vi(3)), 0);
  EXPECT_EQ(I.getIntReg(vi(4)), 5);
  EXPECT_DOUBLE_EQ(I.getFpReg(vf(1)), 2.5);
  EXPECT_DOUBLE_EQ(I.getFpReg(vf(2)), -2.5);
}

TEST(InterpreterTest, MulIAndSubDiv) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 7));
  BB.append(Instruction::makeBinaryImm(Opcode::MulI, vi(1), vi(0), 6));
  BB.append(Instruction::makeLoadImm(vi(2), 100));
  BB.append(Instruction::makeBinary(Opcode::Sub, vi(3), vi(2), vi(1)));
  BB.append(Instruction::makeBinary(Opcode::Div, vi(4), vi(2), vi(0)));
  BB.append(Instruction::makeBinary(Opcode::Rem, vi(5), vi(2), vi(0)));
  Interpreter I;
  I.run(BB);
  EXPECT_EQ(I.getIntReg(vi(1)), 42);
  EXPECT_EQ(I.getIntReg(vi(3)), 58);
  EXPECT_EQ(I.getIntReg(vi(4)), 14);
  EXPECT_EQ(I.getIntReg(vi(5)), 2);
}

TEST(InterpreterTest, FpArithmeticOps) {
  BasicBlock BB("b");
  BB.append(Instruction::makeFLoadImm(vf(0), 9.0));
  BB.append(Instruction::makeFLoadImm(vf(1), 4.0));
  BB.append(Instruction::makeBinary(Opcode::FSub, vf(2), vf(0), vf(1)));
  BB.append(Instruction::makeBinary(Opcode::FDiv, vf(3), vf(0), vf(1)));
  BB.append(Instruction::makeFLoadImm(vf(4), 0.0));
  BB.append(Instruction::makeBinary(Opcode::FDiv, vf(5), vf(0), vf(4)));
  Interpreter I;
  I.run(BB);
  EXPECT_DOUBLE_EQ(I.getFpReg(vf(2)), 5.0);
  EXPECT_DOUBLE_EQ(I.getFpReg(vf(3)), 2.25);
  EXPECT_DOUBLE_EQ(I.getFpReg(vf(5)), 0.0); // Defined division by zero.
}

TEST(InterpreterTest, NopAndIntMemoryRoundTrip) {
  BasicBlock BB("b");
  BB.append(Instruction::makeNop());
  BB.append(Instruction::makeLoadImm(vi(0), 500));
  BB.append(Instruction::makeLoadImm(vi(1), -77));
  BB.append(Instruction::makeStore(Opcode::Store, vi(1), vi(0), 16, 2));
  BB.append(Instruction::makeLoad(Opcode::Load, vi(2), vi(0), 16, 2));
  Interpreter I;
  I.run(BB);
  EXPECT_EQ(I.getIntReg(vi(2)), -77);
  EXPECT_EQ(I.instructionsExecuted(), 5u);
}

//===- tests/RegAllocTest.cpp - Unit tests for register allocation --------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"
#include "ir/IrBuilder.h"
#include "ir/IrVerifier.h"
#include "regalloc/LocalRegAlloc.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace bsched;

namespace {

/// True if every register operand in \p BB is physical.
bool fullyPhysical(const BasicBlock &BB) {
  for (const Instruction &I : BB) {
    if (I.hasDest() && !I.dest().isPhysical())
      return false;
    for (Reg Src : I.sources())
      if (!Src.isPhysical())
        return false;
  }
  return true;
}

/// Runs \p Original and its allocated rewrite, seeding allocated live-ins
/// from the original's register values, and compares program-visible
/// memory (everything except the spill area).
void expectSemanticsPreserved(Function &F, const BasicBlock &Original,
                              const BasicBlock &Allocated,
                              const RegAllocResult &Alloc) {
  Interpreter Before;
  Before.run(Original);

  Interpreter After;
  for (const auto &[VregRaw, Phys] : Alloc.LiveInAssignment) {
    // Reconstruct the Reg from its raw bits via a fresh interpreter read.
    // Live-ins were never written in `Before`, so their values are the
    // deterministic defaults of the *virtual* registers.
    Reg Vreg = Phys.regClass() == RegClass::Fp
                   ? Reg::makeVirtual(RegClass::Fp, VregRaw & 0xFFFFFF)
                   : Reg::makeVirtual(RegClass::Int, VregRaw & 0xFFFFFF);
    ASSERT_EQ(Vreg.rawBits(), VregRaw);
    if (Phys.regClass() == RegClass::Fp)
      After.setFpReg(Phys, Before.getFpReg(Vreg));
    else
      After.setIntReg(Phys, Before.getIntReg(Vreg));
  }
  After.run(Allocated);

  AliasClassId Spill = F.getOrCreateAliasClass(SpillAliasClassName);
  EXPECT_EQ(Before.memoryImage(), After.memoryImageExcluding(Spill));
}

/// Convenience: tiny register files to force spilling.
TargetDescription tinyTarget() {
  TargetDescription T;
  T.NumIntRegs = 9; // 4 general + 4 pool + FP.
  T.NumFpRegs = 8;  // 4 general + 4 pool.
  T.SpillPoolSize = 4;
  return T;
}

} // namespace

TEST(RegAllocTest, SimpleBlockNoSpills) {
  Function F("f");
  BasicBlock &BB = F.addBlock("b");
  IrBuilder B(F, BB);
  Reg A = B.emitLoadImm(1);
  Reg C = B.emitLoadImm(2);
  Reg D = B.emitBinary(Opcode::Add, A, C);
  B.emitStore(D, A, 0, F.getOrCreateAliasClass("m"));
  B.emitRet();

  BasicBlock Original = BB;
  RegAllocResult Alloc = allocateRegisters(F, BB);
  EXPECT_EQ(Alloc.spillInstructions(), 0u);
  EXPECT_TRUE(fullyPhysical(BB));
  EXPECT_TRUE(verifyClean(verifyBlock(BB)));
  EXPECT_EQ(BB.size(), Original.size());
  expectSemanticsPreserved(F, Original, BB, Alloc);
}

TEST(RegAllocTest, HighPressureForcesSpills) {
  // Define 12 long-lived values with 4 general registers: must spill.
  Function F("f");
  BasicBlock &BB = F.addBlock("b");
  IrBuilder B(F, BB);
  std::vector<Reg> Vals;
  for (int I = 0; I != 12; ++I)
    Vals.push_back(B.emitLoadImm(I * 10));
  // Consume them all afterwards so every value stays live across the defs.
  Reg Sum = Vals[0];
  for (int I = 1; I != 12; ++I)
    Sum = B.emitBinary(Opcode::Add, Sum, Vals[I]);
  Reg Base = B.emitLoadImm(0);
  B.emitStore(Sum, Base, 0, F.getOrCreateAliasClass("m"));

  BasicBlock Original = BB;
  RegAllocResult Alloc = allocateRegisters(F, BB, tinyTarget());
  EXPECT_GT(Alloc.SpillStores, 0u);
  EXPECT_GT(Alloc.SpillLoads, 0u);
  EXPECT_TRUE(fullyPhysical(BB));
  expectSemanticsPreserved(F, Original, BB, Alloc);
}

TEST(RegAllocTest, SpillCodeUsesDedicatedClassAndFramePointer) {
  Function F("f");
  BasicBlock &BB = F.addBlock("b");
  IrBuilder B(F, BB);
  std::vector<Reg> Vals;
  for (int I = 0; I != 10; ++I)
    Vals.push_back(B.emitLoadImm(I));
  Reg Sum = Vals[0];
  for (int I = 1; I != 10; ++I)
    Sum = B.emitBinary(Opcode::Add, Sum, Vals[I]);
  B.emitStore(Sum, Vals[0], 0, F.getOrCreateAliasClass("m"));

  TargetDescription Target = tinyTarget();
  RegAllocResult Alloc = allocateRegisters(F, BB, Target);
  ASSERT_GT(Alloc.spillInstructions(), 0u);

  AliasClassId Spill = F.getOrCreateAliasClass(SpillAliasClassName);
  unsigned Seen = 0;
  for (const Instruction &I : BB) {
    if (!I.isMemory() || I.aliasClass() != Spill)
      continue;
    ++Seen;
    EXPECT_EQ(I.addressBase(), Target.framePointer());
  }
  EXPECT_EQ(Seen, Alloc.spillInstructions());
}

TEST(RegAllocTest, LiveInsGetStableAssignments) {
  Function F("f");
  BasicBlock &BB = F.addBlock("b");
  Reg In0 = F.makeVirtualReg(RegClass::Int);
  Reg In1 = F.makeVirtualReg(RegClass::Int);
  IrBuilder B(F, BB);
  Reg Sum = B.emitBinary(Opcode::Add, In0, In1);
  B.emitStore(Sum, In0, 0, F.getOrCreateAliasClass("m"));

  RegAllocResult Alloc = allocateRegisters(F, BB);
  EXPECT_EQ(Alloc.LiveInAssignment.size(), 2u);
  EXPECT_TRUE(Alloc.LiveInAssignment.count(In0.rawBits()));
  EXPECT_TRUE(Alloc.LiveInAssignment.count(In1.rawBits()));
}

TEST(RegAllocTest, FifoPoolRotatesReloadRegisters) {
  // Force many reloads and check that consecutive reloads use different
  // pool registers under FIFO, but the same register when FIFO is off.
  auto BuildAndCollect = [](bool Fifo) {
    Function F("f");
    BasicBlock &BB = F.addBlock("b");
    IrBuilder B(F, BB);
    std::vector<Reg> Vals;
    for (int I = 0; I != 10; ++I)
      Vals.push_back(B.emitLoadImm(I));
    // Use them in definition order: the early ones were evicted.
    Reg Acc = B.emitLoadImm(100);
    for (int I = 0; I != 10; ++I)
      Acc = B.emitBinary(Opcode::Add, Acc, Vals[I]);
    B.emitStore(Acc, Vals[9], 0, F.getOrCreateAliasClass("m"));

    TargetDescription Target;
    Target.NumIntRegs = 9;
    Target.NumFpRegs = 8;
    Target.SpillPoolSize = 3;
    Target.FifoSpillPool = Fifo;
    allocateRegisters(F, BB, Target);

    AliasClassId Spill = F.getOrCreateAliasClass(SpillAliasClassName);
    std::vector<unsigned> ReloadRegs;
    for (const Instruction &I : BB)
      if (I.isLoad() && I.aliasClass() == Spill)
        ReloadRegs.push_back(I.dest().id());
    return ReloadRegs;
  };

  std::vector<unsigned> Fifo = BuildAndCollect(true);
  std::vector<unsigned> Fixed = BuildAndCollect(false);
  ASSERT_GE(Fifo.size(), 3u);
  ASSERT_GE(Fixed.size(), 3u);

  // FIFO: consecutive reloads rotate.
  EXPECT_NE(Fifo[0], Fifo[1]);
  EXPECT_NE(Fifo[1], Fifo[2]);
  // Fixed: every reload hammers the same lowest pool register.
  std::unordered_set<unsigned> FixedSet(Fixed.begin(), Fixed.end());
  EXPECT_EQ(FixedSet.size(), 1u);
}

TEST(RegAllocTest, RedefinitionReusesRegister) {
  Function F("f");
  BasicBlock &BB = F.addBlock("b");
  Reg V = F.makeVirtualReg(RegClass::Int);
  BB.append(Instruction::makeLoadImm(V, 1));
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, V, V, 1));
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, V, V, 1));
  Reg Base = F.makeVirtualReg(RegClass::Int);
  BB.append(Instruction::makeLoadImm(Base, 0));
  BB.append(Instruction::makeStore(Opcode::Store, V, Base, 0,
                                   F.getOrCreateAliasClass("m")));

  BasicBlock Original = BB;
  RegAllocResult Alloc = allocateRegisters(F, BB);
  EXPECT_EQ(Alloc.spillInstructions(), 0u);
  // All three defs of V land in the same physical register.
  EXPECT_EQ(BB[0].dest(), BB[1].dest());
  EXPECT_EQ(BB[1].dest(), BB[2].dest());
  expectSemanticsPreserved(F, Original, BB, Alloc);
}

TEST(RegAllocTest, MixedClassesAllocateIndependently) {
  Function F("f");
  BasicBlock &BB = F.addBlock("b");
  IrBuilder B(F, BB);
  Reg I0 = B.emitLoadImm(3);
  Reg F0 = B.emitFLoadImm(1.5);
  Reg F1 = B.emitBinary(Opcode::FAdd, F0, F0);
  Reg I1 = B.emitBinaryImm(Opcode::AddI, I0, 5);
  B.emitStore(F1, I1, 0, F.getOrCreateAliasClass("a"));
  B.emitStore(I1, I1, 8, F.getOrCreateAliasClass("a"));

  BasicBlock Original = BB;
  RegAllocResult Alloc = allocateRegisters(F, BB);
  EXPECT_TRUE(fullyPhysical(BB));
  expectSemanticsPreserved(F, Original, BB, Alloc);
}

TEST(RegAllocTest, TerminatorOperandAllocated) {
  Function F("f");
  F.addBlock("exit").append(Instruction::makeRet());
  BasicBlock &BB = F.addBlock("b");
  IrBuilder B(F, BB);
  Reg C = B.emitLoadImm(1);
  B.emitBranch(Opcode::BranchNotZero, C, 0);

  allocateRegisters(F, BB);
  EXPECT_TRUE(fullyPhysical(BB));
  EXPECT_TRUE(BB.hasTerminator());
}

//===----------------------------------------------------------------------===
// Property tests: random programs survive allocation under tiny targets
//===----------------------------------------------------------------------===

namespace {

/// Random straight-line program over a handful of values and two arrays.
void buildRandomProgram(Function &F, BasicBlock &BB, Rng &R,
                        unsigned NumInstrs) {
  IrBuilder B(F, BB);
  AliasClassId ClassA = F.getOrCreateAliasClass("a");
  AliasClassId ClassB = F.getOrCreateAliasClass("b");
  std::vector<Reg> Ints{B.emitLoadImm(64), B.emitLoadImm(512)};
  std::vector<Reg> Fps{B.emitFLoadImm(0.5)};
  auto PickInt = [&] { return Ints[R.nextBounded(Ints.size())]; };
  auto PickFp = [&] { return Fps[R.nextBounded(Fps.size())]; };

  for (unsigned I = 0; I != NumInstrs; ++I) {
    switch (R.nextBounded(7)) {
    case 0:
      Ints.push_back(B.emitLoad(PickInt(), 8 * R.nextBounded(8), ClassA));
      break;
    case 1:
      Fps.push_back(B.emitFLoad(PickInt(), 8 * R.nextBounded(8), ClassB));
      break;
    case 2:
      B.emitStore(PickFp(), PickInt(), 8 * R.nextBounded(8), ClassB);
      break;
    case 3:
      Ints.push_back(B.emitBinary(Opcode::Add, PickInt(), PickInt()));
      break;
    case 4:
      Fps.push_back(B.emitBinary(Opcode::FMul, PickFp(), PickFp()));
      break;
    case 5:
      Fps.push_back(B.emitFMadd(PickFp(), PickFp(), PickFp()));
      break;
    default:
      B.emitStore(PickInt(), PickInt(), 8 * R.nextBounded(8), ClassA);
      break;
    }
  }
  // Store a digest so the memory image reflects the whole computation.
  Reg Base = B.emitLoadImm(4096);
  B.emitStore(Fps.back(), Base, 0, ClassB);
  B.emitStore(Ints.back(), Base, 8, ClassA);
}

} // namespace

class RegAllocPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RegAllocPropertyTest, AllocationPreservesSemanticsUnderPressure) {
  Rng R(GetParam());
  Function F("rand");
  BasicBlock &BB = F.addBlock("b");
  buildRandomProgram(F, BB, R, 60);

  BasicBlock Original = BB;
  RegAllocResult Alloc = allocateRegisters(F, BB, tinyTarget());
  EXPECT_TRUE(fullyPhysical(BB));
  EXPECT_TRUE(verifyClean(verifyBlock(BB)));
  expectSemanticsPreserved(F, Original, BB, Alloc);
}

TEST_P(RegAllocPropertyTest, AllocationPreservesSemanticsDefaultTarget) {
  Rng R(GetParam() ^ 0xFEED);
  Function F("rand");
  BasicBlock &BB = F.addBlock("b");
  buildRandomProgram(F, BB, R, 80);

  BasicBlock Original = BB;
  RegAllocResult Alloc = allocateRegisters(F, BB);
  EXPECT_TRUE(fullyPhysical(BB));
  expectSemanticsPreserved(F, Original, BB, Alloc);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, RegAllocPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88,
                                           99, 111));

//===- tests/SimTest.cpp - Unit tests for the timing simulator ------------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "ir/IrBuilder.h"
#include "sim/MemorySystem.h"
#include "sim/Processor.h"
#include "sim/Simulator.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

using namespace bsched;

namespace {
Reg vi(unsigned Id) { return Reg::makeVirtual(RegClass::Int, Id); }

/// lat-cycle load into a fresh reg, consumer right behind it.
BasicBlock loadThenUse() {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoad(Opcode::Load, vi(1), vi(0), 0, 0));
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(2), vi(1), 1));
  return BB;
}
} // namespace

//===----------------------------------------------------------------------===
// Memory systems
//===----------------------------------------------------------------------===

TEST(MemorySystemTest, FixedAlwaysSame) {
  FixedSystem Mem(7);
  Rng R(1);
  for (int I = 0; I != 10; ++I)
    EXPECT_EQ(Mem.sampleLatency(R), 7u);
  EXPECT_DOUBLE_EQ(Mem.optimisticLatency(), 7.0);
  EXPECT_DOUBLE_EQ(Mem.effectiveLatency(), 7.0);
}

TEST(MemorySystemTest, CacheLatenciesAndRates) {
  CacheSystem Mem(0.8, 2, 5);
  Rng R(42);
  int Hits = 0;
  constexpr int N = 100000;
  for (int I = 0; I != N; ++I) {
    unsigned L = Mem.sampleLatency(R);
    EXPECT_TRUE(L == 2 || L == 5);
    Hits += L == 2;
  }
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.8, 0.01);
  EXPECT_DOUBLE_EQ(Mem.optimisticLatency(), 2.0);
  EXPECT_NEAR(Mem.effectiveLatency(), 2.6, 1e-12);
  EXPECT_EQ(Mem.name(), "L80(2,5)");
}

TEST(MemorySystemTest, PaperEffectiveLatencies) {
  // The "Optimistic Latency" rows of Table 2.
  EXPECT_NEAR(CacheSystem(0.8, 2, 10).effectiveLatency(), 3.6, 1e-12);
  EXPECT_NEAR(CacheSystem(0.95, 2, 5).effectiveLatency(), 2.15, 1e-12);
  EXPECT_NEAR(CacheSystem(0.95, 2, 10).effectiveLatency(), 2.4, 1e-12);
  EXPECT_NEAR(MixedSystem(0.8, 2, 30, 5).effectiveLatency(), 7.6, 1e-12);
}

TEST(MemorySystemTest, NetworkMomentsAndFloor) {
  NetworkSystem Mem(5.0, 2.0);
  Rng R(7);
  RunningStat S;
  for (int I = 0; I != 200000; ++I) {
    unsigned L = Mem.sampleLatency(R);
    EXPECT_GE(L, 1u);
    S.add(static_cast<double>(L));
  }
  EXPECT_NEAR(S.mean(), 5.0, 0.05);
  EXPECT_NEAR(S.stddev(), 2.0, 0.05);
  EXPECT_EQ(Mem.name(), "N(5,2)");
}

TEST(MemorySystemTest, NetworkClampingRaisesLowMeans) {
  // N(2,5) is heavily clamped at 1: its realized mean exceeds 2.
  NetworkSystem Mem(2.0, 5.0);
  Rng R(9);
  RunningStat S;
  for (int I = 0; I != 100000; ++I)
    S.add(static_cast<double>(Mem.sampleLatency(R)));
  EXPECT_GT(S.mean(), 2.5);
}

TEST(MemorySystemTest, MixedNameAndSampling) {
  MixedSystem Mem(0.8, 2, 30, 5);
  EXPECT_EQ(Mem.name(), "L80-N(30,5)");
  Rng R(3);
  int Hits = 0;
  constexpr int N = 50000;
  for (int I = 0; I != N; ++I)
    Hits += Mem.sampleLatency(R) == 2;
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.8, 0.02);
}

TEST(ProcessorModelTest, Names) {
  EXPECT_EQ(ProcessorModel::unlimited().name(), "UNLIMITED");
  EXPECT_EQ(ProcessorModel::maxOutstanding(8).name(), "MAX-8");
  EXPECT_EQ(ProcessorModel::maxLength(8).name(), "LEN-8");
}

//===----------------------------------------------------------------------===
// Simulator: interlock accounting
//===----------------------------------------------------------------------===

TEST(SimulatorTest, EmptyBlock) {
  BasicBlock BB("b");
  Rng R(1);
  BlockSimResult Res =
      simulateBlock(BB, ProcessorModel::unlimited(), FixedSystem(5), R);
  EXPECT_EQ(Res.Cycles, 0u);
  EXPECT_EQ(Res.Instructions, 0u);
}

TEST(SimulatorTest, StraightLineNoLoadsOneCyclePerInstruction) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 1));
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(1), vi(0), 1));
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(2), vi(1), 1));
  Rng R(1);
  BlockSimResult Res =
      simulateBlock(BB, ProcessorModel::unlimited(), FixedSystem(5), R);
  EXPECT_EQ(Res.Cycles, 3u);
  EXPECT_EQ(Res.Instructions, 3u);
  EXPECT_EQ(Res.InterlockCycles, 0u);
}

TEST(SimulatorTest, ConsumerStallsForLoadLatency) {
  BasicBlock BB = loadThenUse();
  Rng R(1);
  // Load at cycle 0 completes at 4; consumer issues at 4: 3 interlocks.
  BlockSimResult Res =
      simulateBlock(BB, ProcessorModel::unlimited(), FixedSystem(4), R);
  EXPECT_EQ(Res.Cycles, 5u);
  EXPECT_EQ(Res.Instructions, 2u);
  EXPECT_EQ(Res.InterlockCycles, 3u);
  EXPECT_NEAR(Res.interlockPercent(), 60.0, 1e-9);
}

TEST(SimulatorTest, IndependentWorkHidesLatency) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoad(Opcode::Load, vi(1), vi(0), 0, 0));
  for (unsigned I = 0; I != 3; ++I)
    BB.append(Instruction::makeLoadImm(vi(10 + I), I));
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(2), vi(1), 1));
  Rng R(1);
  // Load completes at 4; fillers occupy cycles 1-3; consumer at 4.
  BlockSimResult Res =
      simulateBlock(BB, ProcessorModel::unlimited(), FixedSystem(4), R);
  EXPECT_EQ(Res.Cycles, 5u);
  EXPECT_EQ(Res.InterlockCycles, 0u);
}

TEST(SimulatorTest, NonBlockingLoadsOverlap) {
  // Two independent loads back to back, consumers afterwards: latencies
  // overlap rather than serialize.
  BasicBlock BB("b");
  BB.append(Instruction::makeLoad(Opcode::Load, vi(1), vi(0), 0, 0));
  BB.append(Instruction::makeLoad(Opcode::Load, vi(2), vi(0), 8, 0));
  BB.append(Instruction::makeBinary(Opcode::Add, vi(3), vi(1), vi(2)));
  Rng R(1);
  BlockSimResult Res =
      simulateBlock(BB, ProcessorModel::unlimited(), FixedSystem(10), R);
  // Loads at 0 and 1; both complete by 11; add at 11.
  EXPECT_EQ(Res.Cycles, 12u);
  EXPECT_EQ(Res.InterlockCycles, 9u);
}

TEST(SimulatorTest, UnusedLoadResultDoesNotStall) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoad(Opcode::Load, vi(1), vi(0), 0, 0));
  BB.append(Instruction::makeLoadImm(vi(2), 1));
  Rng R(1);
  BlockSimResult Res =
      simulateBlock(BB, ProcessorModel::unlimited(), FixedSystem(50), R);
  EXPECT_EQ(Res.Cycles, 2u); // No drain for the dangling load.
}

TEST(SimulatorTest, OpLatencyModelHonored) {
  BasicBlock BB("b");
  Reg F0 = Reg::makeVirtual(RegClass::Fp, 0);
  Reg F1 = Reg::makeVirtual(RegClass::Fp, 1);
  Reg F2 = Reg::makeVirtual(RegClass::Fp, 2);
  BB.append(Instruction::makeBinary(Opcode::FMul, F2, F0, F1));
  BB.append(Instruction::makeBinary(Opcode::FAdd, F0, F2, F1));
  Rng R(1);
  BlockSimResult Res =
      simulateBlock(BB, ProcessorModel::unlimited(), FixedSystem(2), R,
                    LatencyModel::withFpLatency(4.0));
  // FMul at 0 (result at 4), FAdd at 4.
  EXPECT_EQ(Res.Cycles, 5u);
  EXPECT_EQ(Res.InterlockCycles, 3u);
}

//===----------------------------------------------------------------------===
// Simulator: processor models
//===----------------------------------------------------------------------===

namespace {

/// N independent loads, then a consumer of the last one.
BasicBlock manyLoads(unsigned N) {
  BasicBlock BB("b");
  for (unsigned I = 0; I != N; ++I)
    BB.append(
        Instruction::makeLoad(Opcode::Load, vi(1 + I), vi(0), 8 * I, 0));
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(100), vi(N), 1));
  return BB;
}

} // namespace

TEST(SimulatorTest, MaxOutstandingBlocksNinthLoad) {
  BasicBlock BB = manyLoads(9);
  Rng R1(1), R2(1);
  BlockSimResult Unl =
      simulateBlock(BB, ProcessorModel::unlimited(), FixedSystem(20), R1);
  BlockSimResult Max8 =
      simulateBlock(BB, ProcessorModel::maxOutstanding(8), FixedSystem(20),
                    R2);
  // UNLIMITED: loads at 0..8; last completes at 8+20=28; consumer at 28.
  EXPECT_EQ(Unl.Cycles, 29u);
  // MAX-8: the ninth load waits until the first completes (cycle 20);
  // it finishes at 40; consumer at 40.
  EXPECT_EQ(Max8.Cycles, 41u);
}

TEST(SimulatorTest, MaxOutstandingIdenticalWhenUnderLimit) {
  BasicBlock BB = manyLoads(4);
  Rng R1(5), R2(5);
  BlockSimResult A =
      simulateBlock(BB, ProcessorModel::unlimited(), FixedSystem(12), R1);
  BlockSimResult B =
      simulateBlock(BB, ProcessorModel::maxOutstanding(8), FixedSystem(12),
                    R2);
  EXPECT_EQ(A.Cycles, B.Cycles);
}

TEST(SimulatorTest, MaxLengthBlocksAfterLimitCycles) {
  // One 20-cycle load, then a stream of independent fillers. LEN-8 stalls
  // the whole pipeline from cycle 8 until the load returns at 20.
  BasicBlock BB("b");
  BB.append(Instruction::makeLoad(Opcode::Load, vi(1), vi(0), 0, 0));
  for (unsigned I = 0; I != 15; ++I)
    BB.append(Instruction::makeLoadImm(vi(10 + I), I));
  Rng R1(1), R2(1);
  BlockSimResult Unl =
      simulateBlock(BB, ProcessorModel::unlimited(), FixedSystem(20), R1);
  BlockSimResult Len8 =
      simulateBlock(BB, ProcessorModel::maxLength(8), FixedSystem(20), R2);
  // UNLIMITED: 16 instructions, no stalls.
  EXPECT_EQ(Unl.Cycles, 16u);
  // LEN-8: fillers at 1..7; blocked 8..19; remaining 8 fillers at 20..27.
  EXPECT_EQ(Len8.Cycles, 28u);
  EXPECT_EQ(Len8.InterlockCycles, 12u);
}

TEST(SimulatorTest, MaxLengthNoEffectOnShortLoads) {
  BasicBlock BB = loadThenUse();
  Rng R1(1), R2(1);
  BlockSimResult A =
      simulateBlock(BB, ProcessorModel::unlimited(), FixedSystem(5), R1);
  BlockSimResult B =
      simulateBlock(BB, ProcessorModel::maxLength(8), FixedSystem(5), R2);
  EXPECT_EQ(A.Cycles, B.Cycles);
}

TEST(SimulatorTest, SuperscalarIssueWidth) {
  // Four independent instructions, width 2: two cycles.
  BasicBlock BB("b");
  for (unsigned I = 0; I != 4; ++I)
    BB.append(Instruction::makeLoadImm(vi(I), I));
  Rng R(1);
  ProcessorModel P = ProcessorModel::unlimited();
  P.IssueWidth = 2;
  BlockSimResult Res = simulateBlock(BB, P, FixedSystem(2), R);
  EXPECT_EQ(Res.Cycles, 2u);
  EXPECT_EQ(Res.InterlockCycles, 0u);
}

TEST(SimulatorTest, DeterministicGivenSeed) {
  BasicBlock BB = manyLoads(6);
  CacheSystem Mem(0.8, 2, 10);
  Rng R1(99), R2(99);
  BlockSimResult A =
      simulateBlock(BB, ProcessorModel::unlimited(), Mem, R1);
  BlockSimResult B =
      simulateBlock(BB, ProcessorModel::unlimited(), Mem, R2);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.InterlockCycles, B.InterlockCycles);
}

TEST(SimulatorTest, VariabilityAcrossSeeds) {
  BasicBlock BB = manyLoads(6);
  NetworkSystem Mem(5, 5);
  RunningStat S;
  for (uint64_t Seed = 0; Seed != 64; ++Seed) {
    Rng R(Seed);
    S.add(static_cast<double>(
        simulateBlock(BB, ProcessorModel::unlimited(), Mem, R).Cycles));
  }
  EXPECT_GT(S.stddev(), 0.5); // Latency variance shows up in runtimes.
}

//===----------------------------------------------------------------------===
// Figure 3: interlocks of the Figure 2 schedules across latencies
//===----------------------------------------------------------------------===

namespace {

/// Builds a Figure 1 program as real IR in a given order.
/// Slots: L0 loads from a0, L1 loads from [L0's result], X4 consumes L1;
/// X0..X3 are independent fillers.
BasicBlock figure1Schedule(const std::vector<const char *> &Order) {
  BasicBlock BB("fig");
  for (const char *Name : Order) {
    std::string S(Name);
    if (S == "L0")
      BB.append(Instruction::makeLoad(Opcode::Load, vi(1), vi(0), 0, 0));
    else if (S == "L1")
      BB.append(Instruction::makeLoad(Opcode::Load, vi(2), vi(1), 0, 0));
    else if (S == "X4")
      BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(3), vi(2), 1));
    else // X0..X3 fillers.
      BB.append(Instruction::makeLoadImm(vi(10 + S[1]), 7));
  }
  return BB;
}

uint64_t interlocksAt(const BasicBlock &BB, unsigned Latency) {
  Rng R(1);
  return simulateBlock(BB, ProcessorModel::unlimited(),
                       FixedSystem(Latency), R)
      .InterlockCycles;
}

} // namespace

TEST(Figure3Test, BalancedBeatsGreedyAndLazyInMidRange) {
  BasicBlock Greedy = figure1Schedule(
      {"L0", "X0", "X1", "X2", "X3", "L1", "X4"}); // Figure 2a.
  BasicBlock Lazy = figure1Schedule(
      {"L0", "L1", "X0", "X1", "X2", "X3", "X4"}); // Figure 2b.
  BasicBlock Balanced = figure1Schedule(
      {"L0", "X0", "X1", "L1", "X2", "X3", "X4"}); // Figure 2c.

  // Latency 1: schedules are equivalent (no interlocks anywhere).
  EXPECT_EQ(interlocksAt(Greedy, 1), 0u);
  EXPECT_EQ(interlocksAt(Lazy, 1), 0u);
  EXPECT_EQ(interlocksAt(Balanced, 1), 0u);

  // Latencies 2-4: balanced strictly better than both (Figure 3).
  for (unsigned Lat = 2; Lat <= 4; ++Lat) {
    uint64_t B = interlocksAt(Balanced, Lat);
    EXPECT_LT(B, interlocksAt(Greedy, Lat)) << Lat;
    EXPECT_LT(B, interlocksAt(Lazy, Lat)) << Lat;
  }

  // Large latencies: all equivalent again (asymptotically dominated by
  // the serial load chain).
  EXPECT_EQ(interlocksAt(Balanced, 12), interlocksAt(Greedy, 12));
}

//===- tests/ChaosTest.cpp - Chaos harness over the whole pipeline --------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// The chaos harness proper (DESIGN.md §3i): thousands of compiles under
// randomized deterministic budgets and armed fail points, checking the
// global robustness contract — no crash, no hang, every non-success a
// structured BS80x/BS810 diagnostic, every outcome reproducible, and
// serial and parallel sweeps bit-identical under keyed fault injection.
// The bulk 10k-iteration run rides on the fuzz harness (`fuzz_harness
// --mode chaos`, registered as the chaos_fuzz_smoke ctest entry); these
// tests pin the structured properties on workload-shaped inputs.
//
//===----------------------------------------------------------------------===//

#include "ir/IrPrinter.h"
#include "parser/Parser.h"
#include "pipeline/Sweep.h"
#include "support/FailPoint.h"
#include "support/Rng.h"
#include "workload/PerfectClub.h"

#include <gtest/gtest.h>

using namespace bsched;

namespace {

WorkloadOptions smallWorkload() {
  WorkloadOptions W;
  W.UnrollFactor = 1;
  return W;
}

SimulationConfig smallSim() {
  SimulationConfig Sim;
  Sim.NumRuns = 2;
  Sim.NumResamples = 4;
  return Sim;
}

/// Canonical rendering of one compile outcome: degradation level plus
/// printed program on success, joined diagnostics on failure. Two runs of
/// the same (kernel, budget, arming) must render identically.
std::string outcomeString(const ErrorOr<CompiledFunction> &Result) {
  if (Result.has_value())
    return "ok:" + std::string(degradationName(Result->Degradation)) + "\n" +
           printFunction(Result->Compiled);
  return "err:" + Result.errorText();
}

/// The structured-failure contract: a failed compile under chaos carries
/// at least one diagnostic, and the first is a budget overrun (BS80x) or
/// an injected fault (BS810) — never an unexplained internal error.
void expectStructured(const ErrorOr<CompiledFunction> &Result,
                      const std::string &Context) {
  ASSERT_FALSE(Result.errors().empty()) << Context;
  DiagCode Code = Result.errors().front().Code;
  EXPECT_TRUE(isBudgetDiagCode(Code) || Code == DiagCode::InjectedFault)
      << Context << ": " << Result.errorText();
}

/// Draws a randomized deterministic budget (never DeadlineMs: the chaos
/// contract compares runs bit-for-bit).
ResourceBudget randomBudget(Rng &R) {
  ResourceBudget Budget;
  Budget.Degrade = R.nextBernoulli(0.5);
  switch (R.nextBounded(4)) {
  case 0:
    break; // Unbudgeted: only fail points active.
  case 1:
    Budget.MaxTicks = 1 + R.nextBounded(4096);
    break;
  case 2:
    Budget.MaxClosureBits = 1 + R.nextBounded(8192);
    break;
  default:
    Budget.MaxInstructionsPerBlock = 1 + R.nextBounded(48);
    break;
  }
  return Budget;
}

/// Arms a random subset of the keyed pipeline sites. Stream-mode sites
/// (pool-task) stay disarmed: their evaluation order differs between
/// serial and pooled execution by design.
void armRandomKeyedSites(Rng &R) {
  const char *Sites[] = {failpoints::DagBuild,   failpoints::ClosureAlloc,
                         failpoints::Weighting,  failpoints::Scheduling,
                         failpoints::RegAlloc,   failpoints::Certify};
  FailPointRegistry &Reg = FailPointRegistry::instance();
  for (const char *Site : Sites)
    if (R.nextBernoulli(0.3))
      Reg.enable(Site, 0.05 + 0.25 * R.nextDouble(), R.nextUInt64());
}

} // namespace

// Workload kernels under randomized budgets and fault arming: every
// compile either succeeds (with a recorded degradation level) or fails
// structured, and repeating the identical configuration reproduces the
// outcome byte for byte.
TEST(ChaosTest, BudgetedFaultyCompilesAreStructuredAndReproducible) {
  FailPointRegistry &Reg = FailPointRegistry::instance();
  Reg.disableAll();

  std::vector<SweepEntry> Entries = perfectClubSweepEntries(smallWorkload());
  Rng R(0xC4A0'5E5Full);
  unsigned Degraded = 0;
  unsigned Failed = 0;
  const unsigned Rounds = 300;
  for (unsigned Round = 0; Round != Rounds; ++Round) {
    const SweepEntry &Entry = Entries[R.nextBounded(Entries.size())];
    PipelineConfig Config;
    Config.Policy = R.nextBernoulli(0.5) ? SchedulerPolicy::Balanced
                                         : SchedulerPolicy::Traditional;
    Config.Budget = randomBudget(R);
    if (FailPointRegistry::compiledIn() && R.nextBernoulli(0.6))
      armRandomKeyedSites(R);

    std::string Context =
        Entry.Name + " round " + std::to_string(Round);
    ErrorOr<CompiledFunction> A = runPipeline(Entry.Program, Config);
    if (!A.has_value()) {
      ++Failed;
      expectStructured(A, Context);
    } else if (A->Degradation != DegradationLevel::None) {
      ++Degraded;
    }

    ErrorOr<CompiledFunction> B = runPipeline(Entry.Program, Config);
    EXPECT_EQ(outcomeString(A), outcomeString(B)) << Context;
    Reg.disableAll();
  }
  // The draw distribution must actually exercise both degraded success
  // and structured failure, or the harness is vacuous.
  EXPECT_GT(Degraded, 0u);
  EXPECT_GT(Failed, 0u);
  EXPECT_LT(Failed, Rounds);
}

// The same chaos configuration swept serially and across a worker pool
// produces bit-identical results: keyed fail points and deterministic
// budgets are pure functions of the kernel, not of execution order.
TEST(ChaosTest, SerialAndParallelSweepsAgreeUnderChaos) {
  if (!FailPointRegistry::compiledIn())
    GTEST_SKIP() << "fail points compiled out (BSCHED_NO_FAILPOINTS)";
  FailPointRegistry &Reg = FailPointRegistry::instance();
  Reg.disableAll();

  std::vector<SweepEntry> Entries = perfectClubSweepEntries(smallWorkload());
  Rng R(0xD15EA5Eull);
  for (unsigned Round = 0; Round != 6; ++Round) {
    Reg.disableAll();
    armRandomKeyedSites(R);
    Reg.enable(failpoints::EngineCell, 0.2, R.nextUInt64());

    SweepOptions Serial;
    Serial.Jobs = 1;
    Serial.Base.Budget = randomBudget(R);
    SweepOptions Parallel = Serial;
    Parallel.Jobs = 8;

    SweepResult A = runWorkloadSweep(Entries, NetworkSystem(2, 5),
                                     smallSim(), Serial);
    SweepResult B = runWorkloadSweep(Entries, NetworkSystem(2, 5),
                                     smallSim(), Parallel);
    EXPECT_TRUE(identicalSweepResults(A, B)) << "round " << Round;

    // Failures, if any, are structured.
    for (const SweepKernelOutcome &K : A.Kernels)
      if (!K.ok()) {
        ASSERT_FALSE(K.Errors.empty()) << K.Name;
        bool Structured = false;
        for (const Diagnostic &D : K.Errors)
          Structured |= isBudgetDiagCode(D.Code) ||
                        D.Code == DiagCode::InjectedFault;
        EXPECT_TRUE(Structured) << K.Name << ": " << K.firstError();
      }
  }
  Reg.disableAll();
}

// Environment-variable style arming through parseSpec drives the same
// machinery the BSCHED_FAILPOINTS variable uses; a compile under it
// fails with the injected-fault diagnostic and recovers once disarmed.
TEST(ChaosTest, SpecArmedFaultInjectsAndRecovers) {
  if (!FailPointRegistry::compiledIn())
    GTEST_SKIP() << "fail points compiled out (BSCHED_NO_FAILPOINTS)";
  FailPointRegistry &Reg = FailPointRegistry::instance();
  Reg.disableAll();
  ASSERT_TRUE(Reg.parseSpec("regalloc:1:42"));

  Function F = buildBenchmark(Benchmark::TRACK, smallWorkload());
  ErrorOr<CompiledFunction> Hurt = runPipeline(F, PipelineConfig());
  ASSERT_FALSE(Hurt.has_value());
  EXPECT_EQ(Hurt.errors().front().Code, DiagCode::InjectedFault);

  Reg.disableAll();
  ErrorOr<CompiledFunction> Healed = runPipeline(F, PipelineConfig());
  ASSERT_TRUE(Healed.has_value()) << Healed.errorText();
  EXPECT_EQ(Healed->Degradation, DegradationLevel::None);
}

// Governed parsing under chaos: a parse fail point surfaces as a
// structured diagnostic in the parse result, never a crash or a silent
// partial function list.
TEST(ChaosTest, GovernedParseUnderFaultIsStructured) {
  if (!FailPointRegistry::compiledIn())
    GTEST_SKIP() << "fail points compiled out (BSCHED_NO_FAILPOINTS)";
  FailPointRegistry::instance().disableAll();
  ScopedFailPoint Arm(failpoints::Parse, 1.0, 9);

  ResourceBudget Budget;
  Budget.MaxTicks = 1 << 20;
  ResourceGovernor Gov(Budget);
  ParseResult Result = parseIr("func @f {\nblock b freq 1 {\n  ret\n}\n}",
                               &Gov);
  EXPECT_FALSE(Result.ok());
  bool SawInjected = false;
  for (const Diagnostic &D : Result.Diags)
    SawInjected |= D.Code == DiagCode::InjectedFault;
  EXPECT_TRUE(SawInjected);
}

//===- tests/EngineTest.cpp - Parallel experiment engine tests ------------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// The engine's acceptance properties: parallel runs are bit-identical to
// serial runs, the compile cache returns exactly what a fresh compile
// would, faults stay isolated under concurrency, and the machine-readable
// summary carries the per-cell counters.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"
#include "pipeline/ExperimentEngine.h"
#include "pipeline/Sweep.h"

#include <cstdlib>

#include <gtest/gtest.h>

using namespace bsched;

namespace {

SimulationConfig smallSim() {
  SimulationConfig Sim;
  Sim.NumRuns = 3;
  Sim.NumResamples = 10;
  return Sim;
}

WorkloadOptions smallWorkload() {
  WorkloadOptions W;
  W.UnrollFactor = 1;
  return W;
}

/// Plants a branch to a nonexistent block (see SweepTest).
void corruptFunction(Function &F) {
  ASSERT_GE(F.numBlocks(), 1u);
  std::vector<Instruction> Instrs = F.block(0).instructions();
  Instrs.push_back(Instruction::makeJump(99));
  F.block(0).setInstructions(std::move(Instrs));
}

} // namespace

//===----------------------------------------------------------------------===
// Determinism: serial and parallel runs are bit-identical.
//===----------------------------------------------------------------------===

TEST(EngineTest, SerialMatchesParallel) {
  std::vector<SweepEntry> Entries = perfectClubSweepEntries(smallWorkload());
  NetworkSystem Memory(3, 5);

  SweepOptions Serial;
  Serial.Jobs = 1;
  SweepOptions Parallel;
  Parallel.Jobs = 8;

  SweepResult A = runWorkloadSweep(Entries, Memory, smallSim(), Serial);
  SweepResult B = runWorkloadSweep(Entries, Memory, smallSim(), Parallel);

  EXPECT_EQ(A.Engine.Workers, 1u);
  EXPECT_EQ(B.Engine.Workers, 8u);
  EXPECT_TRUE(identicalSweepResults(A, B));

  // Sanity for the helper itself: a different seed produces different
  // bootstrap runtimes, which identicalSweepResults must notice.
  SimulationConfig Reseeded = smallSim();
  Reseeded.Seed ^= 1;
  SweepResult C = runWorkloadSweep(Entries, Memory, Reseeded, Serial);
  EXPECT_FALSE(identicalSweepResults(A, C));
}

TEST(EngineTest, RepeatedParallelRunsAreIdentical) {
  std::vector<SweepEntry> Entries = perfectClubSweepEntries(smallWorkload());
  CacheSystem Memory(0.8, 2, 10);
  SweepOptions Options;
  Options.Jobs = 8;
  SweepResult A = runWorkloadSweep(Entries, Memory, smallSim(), Options);
  SweepResult B = runWorkloadSweep(Entries, Memory, smallSim(), Options);
  EXPECT_TRUE(identicalSweepResults(A, B));
}

//===----------------------------------------------------------------------===
// The compile cache.
//===----------------------------------------------------------------------===

TEST(EngineTest, CacheHitCorrectness) {
  // The same kernel against two memory systems: compilation depends only
  // on (function, config), so the second cell's compiles must all be
  // cache hits — and its results must equal an uncached engine's.
  Function F = buildBenchmark(Benchmark::TRACK, smallWorkload());
  NetworkSystem MemA(2, 2), MemB(5, 5);

  std::vector<ExperimentCell> Cells;
  Cells.push_back({"track/A", &F, &MemA, 2, SchedulerPolicy::Balanced,
                   PipelineConfig::paperDefault(), smallSim()});
  Cells.push_back({"track/B", &F, &MemB, 2, SchedulerPolicy::Balanced,
                   PipelineConfig::paperDefault(), smallSim()});

  ExperimentEngine Engine(1);
  EngineResult Run = Engine.run(Cells);
  ASSERT_TRUE(Run.Cells[0].ok());
  ASSERT_TRUE(Run.Cells[1].ok());

  // Serially, the first cell compiles traditional + balanced (2 misses)
  // and the second reuses both (2 hits).
  EXPECT_EQ(Run.Cells[0].CacheMisses, 2u);
  EXPECT_EQ(Run.Cells[0].CacheHits, 0u);
  EXPECT_EQ(Run.Cells[1].CacheMisses, 0u);
  EXPECT_EQ(Run.Cells[1].CacheHits, 2u);
  EXPECT_EQ(Engine.cacheSize(), 2u);

  // A fresh engine (empty cache) must produce the identical outcome for
  // the cached cell.
  ExperimentEngine Fresh(1);
  EngineResult Uncached = Fresh.run({Cells[1]});
  ASSERT_TRUE(Uncached.Cells[0].ok());
  EXPECT_EQ(Run.Cells[1].Comparison->CandidateSim.BootstrapRuntimes,
            Uncached.Cells[0].Comparison->CandidateSim.BootstrapRuntimes);
  EXPECT_EQ(Run.Cells[1].Comparison->Improvement.MeanPercent,
            Uncached.Cells[0].Comparison->Improvement.MeanPercent);
}

TEST(EngineTest, CacheDistinguishesConfigs) {
  Function F = buildBenchmark(Benchmark::TRACK, smallWorkload());
  ExperimentEngine Engine(1);

  bool Hit = true;
  ErrorOr<CompiledFunction> A =
      Engine.compileCached(F, PipelineConfig::paperDefault(), &Hit);
  ASSERT_TRUE(A.has_value());
  EXPECT_FALSE(Hit);

  // Same content → hit, even through a distinct (equal) config object.
  ErrorOr<CompiledFunction> B =
      Engine.compileCached(F, PipelineConfig::paperDefault(), &Hit);
  ASSERT_TRUE(B.has_value());
  EXPECT_TRUE(Hit);

  // Any knob change must miss.
  ErrorOr<CompiledFunction> C =
      Engine.compileCached(F, PipelineConfig::unlimitedRegisters(), &Hit);
  ASSERT_TRUE(C.has_value());
  EXPECT_FALSE(Hit);
  ErrorOr<CompiledFunction> D =
      Engine.compileCached(F, PipelineConfig::superscalar(2), &Hit);
  ASSERT_TRUE(D.has_value());
  EXPECT_FALSE(Hit);
  EXPECT_EQ(Engine.cacheSize(), 3u);

  Engine.clearCache();
  EXPECT_EQ(Engine.cacheSize(), 0u);

  // The content hash follows the key.
  EXPECT_EQ(experimentContentHash(F, PipelineConfig::paperDefault()),
            experimentContentHash(F, PipelineConfig::paperDefault()));
  EXPECT_NE(experimentContentHash(F, PipelineConfig::paperDefault()),
            experimentContentHash(F, PipelineConfig::superscalar(2)));
}

//===----------------------------------------------------------------------===
// Fault isolation under concurrency.
//===----------------------------------------------------------------------===

TEST(EngineTest, FaultIsolationUnderConcurrency) {
  std::vector<SweepEntry> Entries = perfectClubSweepEntries(smallWorkload());
  ASSERT_EQ(Entries[4].Name, "MDG");
  corruptFunction(Entries[4].Program);

  FixedSystem Memory(10);
  SweepOptions Options;
  Options.Jobs = 8;
  SweepResult R = runWorkloadSweep(Entries, Memory, smallSim(), Options);

  EXPECT_EQ(R.numSucceeded(), 7u);
  EXPECT_EQ(R.numFailed(), 1u);
  EXPECT_EQ(R.Engine.Failed, 1u);
  EXPECT_FALSE(R.Kernels[4].ok());
  bool SawVerifierError = false;
  for (const Diagnostic &D : R.Kernels[4].Errors)
    SawVerifierError |= D.Code == DiagCode::VerifyBranchOutOfRange;
  EXPECT_TRUE(SawVerifierError);

  // And the degradation is deterministic: the serial run agrees exactly.
  SweepOptions SerialOptions = Options;
  SerialOptions.Jobs = 1;
  SweepResult Serial =
      runWorkloadSweep(Entries, Memory, smallSim(), SerialOptions);
  EXPECT_TRUE(identicalSweepResults(R, Serial));
}

TEST(EngineTest, InvalidConfigFailsAtEntry) {
  Function F = buildBenchmark(Benchmark::TRACK, smallWorkload());
  FixedSystem Memory(10);

  PipelineConfig Bad = PipelineConfig::paperDefault();
  Bad.SchedOptions.IssueWidth = 0; // validate() rejects this.

  ExperimentEngine Engine(4);
  EngineResult Run = Engine.run(
      {{"bad", &F, &Memory, 2, SchedulerPolicy::Balanced, Bad, smallSim()},
       {"good", &F, &Memory, 2, SchedulerPolicy::Balanced,
        PipelineConfig::paperDefault(), smallSim()}});

  ASSERT_EQ(Run.Cells.size(), 2u);
  EXPECT_FALSE(Run.Cells[0].ok());
  ASSERT_FALSE(Run.Cells[0].Errors.empty());
  EXPECT_EQ(Run.Cells[0].Errors.front().Code, DiagCode::PipelineBadConfig);
  // The invalid cell never reached the compiler.
  EXPECT_EQ(Run.Cells[0].CacheMisses + Run.Cells[0].CacheHits, 0u);
  EXPECT_TRUE(Run.Cells[1].ok());
  EXPECT_EQ(Run.Counters.Failed, 1u);
}

//===----------------------------------------------------------------------===
// Counters and the machine-readable summary.
//===----------------------------------------------------------------------===

TEST(EngineTest, SummaryJsonCarriesPerCellCounters) {
  Function F = buildBenchmark(Benchmark::TRACK, smallWorkload());
  NetworkSystem Memory(2, 2);
  ExperimentEngine Engine(2);
  EngineResult Run = Engine.run(
      {{"cell \"one\"", &F, &Memory, 2, SchedulerPolicy::Balanced,
        PipelineConfig::paperDefault(), smallSim()},
       {"cell-two", &F, &Memory, 2, SchedulerPolicy::Balanced,
        PipelineConfig::paperDefault(), smallSim()}});

  EXPECT_EQ(Run.Counters.Cells, 2u);
  EXPECT_EQ(Run.Counters.Workers, 2u);
  EXPECT_EQ(Run.Counters.Failed, 0u);
  // Four compilations total. The first run's hit count is informational
  // only: with both workers racing on identical cells, each may
  // first-compile the same key (anywhere from 0 to 2 hits), so only the
  // accounting identity is deterministic here.
  EXPECT_EQ(Run.Counters.CacheHits + Run.Counters.CacheMisses, 4u);
  EXPECT_GE(Run.Counters.WallMillis, 0.0);
  EXPECT_GE(Run.Counters.CellWallMillis, 0.0);

  // Rerunning on the now-warm cache is deterministic: every compile hits.
  EngineResult Again = Engine.run(
      {{"cell \"one\"", &F, &Memory, 2, SchedulerPolicy::Balanced,
        PipelineConfig::paperDefault(), smallSim()},
       {"cell-two", &F, &Memory, 2, SchedulerPolicy::Balanced,
        PipelineConfig::paperDefault(), smallSim()}});
  EXPECT_EQ(Again.Counters.CacheHits, 4u);
  EXPECT_EQ(Again.Counters.CacheMisses, 0u);

  std::string Json = Run.summaryJson();
  EXPECT_NE(Json.find("\"workers\":2"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"cells\":2"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"per_cell\":["), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"label\":\"cell \\\"one\\\"\""), std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"label\":\"cell-two\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"ok\":true"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"wall_ms\":"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"cache_hits\":"), std::string::npos) << Json;
}

//===----------------------------------------------------------------------===
// Observability: per-cell metrics are deterministic and land in the
// summary (DESIGN.md §3g). These tests also pass under BSCHED_NO_OBS,
// where every snapshot is empty on both sides of each comparison; the
// assertions that require actual samples are guarded.
//===----------------------------------------------------------------------===

TEST(EngineTest, MetricSnapshotSerialMatchesParallel) {
  std::vector<SweepEntry> Entries = perfectClubSweepEntries(smallWorkload());
  NetworkSystem Memory(3, 5);

  SweepOptions Serial;
  Serial.Jobs = 1;
  SweepOptions Parallel;
  Parallel.Jobs = 8;

  SweepResult A = runWorkloadSweep(Entries, Memory, smallSim(), Serial);
  SweepResult B = runWorkloadSweep(Entries, Memory, smallSim(), Parallel);

  // The merged totals and every per-kernel snapshot are exact across
  // worker counts — sharded registries merge to the serial counts, and
  // the compile cache replays stored compile metrics on every hit.
  EXPECT_EQ(A.Metrics, B.Metrics);
  ASSERT_EQ(A.Kernels.size(), B.Kernels.size());
  for (size_t I = 0; I != A.Kernels.size(); ++I)
    EXPECT_EQ(A.Kernels[I].Metrics, B.Kernels[I].Metrics)
        << A.Kernels[I].Name;

#ifndef BSCHED_NO_OBS
  // The snapshot carries the simulator's stall accounting and latency
  // distribution for every kernel.
  EXPECT_GT(A.Metrics.Counters.at("bsched.sim.block_runs"), 0u);
  EXPECT_GT(A.Metrics.Counters.at("bsched.sim.cycles"), 0u);
  ASSERT_TRUE(A.Metrics.Counters.count("bsched.sim.interlock_cycles"));
  const HistogramData &Latency =
      A.Metrics.Histograms.at("bsched.sim.load_latency_cycles");
  EXPECT_GT(Latency.Count, 0u);
  EXPECT_GT(A.Metrics.Counters.at("bsched.pipeline.kernels"), 0u);
  EXPECT_GT(A.Metrics.Counters.at("bsched.sched.passes"), 0u);
  for (const SweepKernelOutcome &K : A.Kernels)
    EXPECT_GT(K.Metrics.Counters.at("bsched.sim.loads"), 0u) << K.Name;
#endif
}

TEST(EngineTest, WarmCacheReplaysCompileMetrics) {
  Function F = buildBenchmark(Benchmark::TRACK, smallWorkload());
  NetworkSystem Memory(2, 2);
  ExperimentEngine Engine(1);
  std::vector<ExperimentCell> Cells{
      {"track", &F, &Memory, 2, SchedulerPolicy::Balanced,
       PipelineConfig::paperDefault(), smallSim()}};

  EngineResult Cold = Engine.run(Cells);
  EngineResult Warm = Engine.run(Cells);
  ASSERT_EQ(Warm.Counters.CacheMisses, 0u);
  ASSERT_EQ(Warm.Counters.CacheHits, 2u);

  // Cache hits replay the stored compile metrics, so a warm run reports
  // exactly the totals of a cold one.
  EXPECT_EQ(Cold.Metrics, Warm.Metrics);
#ifndef BSCHED_NO_OBS
  EXPECT_GT(Warm.Metrics.Counters.at("bsched.pipeline.kernels"), 0u);
  EXPECT_GT(Warm.Metrics.Counters.at("bsched.dag.nodes"), 0u);
#endif
}

TEST(EngineTest, SummaryJsonCarriesMetricSnapshot) {
  Function F = buildBenchmark(Benchmark::TRACK, smallWorkload());
  NetworkSystem Memory(2, 2);
  ExperimentEngine Engine(1);
  EngineResult Run = Engine.run(
      {{"track", &F, &Memory, 2, SchedulerPolicy::Balanced,
        PipelineConfig::paperDefault(), smallSim()}});
  std::string Json = Run.summaryJson();
#ifndef BSCHED_NO_OBS
  EXPECT_NE(Json.find("\"metrics\":"), std::string::npos) << Json;
  EXPECT_NE(Json.find("bsched.sim.load_latency_cycles"), std::string::npos)
      << Json;
  EXPECT_NE(Json.find("bsched.sim.interlock_cycles"), std::string::npos)
      << Json;
#else
  EXPECT_EQ(Json.find("\"metrics\":"), std::string::npos) << Json;
#endif
}

TEST(EngineTest, CellMetricsCanBeDisabled) {
  Function F = buildBenchmark(Benchmark::TRACK, smallWorkload());
  NetworkSystem Memory(2, 2);
  ExperimentEngine Engine(1);
  Engine.setCollectCellMetrics(false);
  EngineResult Run = Engine.run(
      {{"track", &F, &Memory, 2, SchedulerPolicy::Balanced,
        PipelineConfig::paperDefault(), smallSim()}});
  EXPECT_TRUE(Run.Metrics.empty());
  for (const CellOutcome &Cell : Run.Cells)
    EXPECT_TRUE(Cell.Metrics.empty());
  EXPECT_EQ(Run.summaryJson().find("\"metrics\":"), std::string::npos);

  // Collection state never changes the measurements themselves.
  ExperimentEngine Observed(1);
  EngineResult WithMetrics = Observed.run(
      {{"track", &F, &Memory, 2, SchedulerPolicy::Balanced,
        PipelineConfig::paperDefault(), smallSim()}});
  ASSERT_TRUE(Run.Cells[0].ok());
  ASSERT_TRUE(WithMetrics.Cells[0].ok());
  EXPECT_EQ(Run.Cells[0].Comparison->CandidateSim.BootstrapRuntimes,
            WithMetrics.Cells[0].Comparison->CandidateSim.BootstrapRuntimes);
}

TEST(EngineTest, EngineObsContextReceivesRunTotals) {
  Function F = buildBenchmark(Benchmark::TRACK, smallWorkload());
  NetworkSystem Memory(2, 2);
  MetricRegistry EngineReg;
  TraceRecorder Trace;
  ExperimentEngine Engine(1, ObsContext{&EngineReg, &Trace, {}});
  Engine.run({{"track", &F, &Memory, 2, SchedulerPolicy::Balanced,
               PipelineConfig::paperDefault(), smallSim()}});

#ifndef BSCHED_NO_OBS
  MetricSnapshot Snap = EngineReg.snapshot();
  EXPECT_EQ(Snap.Counters.at("bsched.engine.cells"), 1u);
  EXPECT_EQ(Snap.Counters.at("bsched.engine.failed_cells"), 0u);
  EXPECT_GT(Snap.Counters.at("bsched.sim.cycles"), 0u);

  // The trace covers both compilation phases and the simulation, per
  // kernel: compile -> dag/sched/certify/regalloc, then sim.
  std::vector<TraceEvent> Events = Trace.events();
  auto Has = [&](const char *Name) {
    for (const TraceEvent &E : Events)
      if (E.Name == Name)
        return true;
    return false;
  };
  EXPECT_TRUE(Has("compile"));
  EXPECT_TRUE(Has("dag"));
  EXPECT_TRUE(Has("sched"));
  EXPECT_TRUE(Has("regalloc"));
  EXPECT_TRUE(Has("certify"));
  EXPECT_TRUE(Has("sim"));
#endif
}

//===----------------------------------------------------------------------===
// The BSCHED_JOBS override.
//===----------------------------------------------------------------------===

TEST(EngineTest, BschedJobsEnvOverridesDefaultWorkerCount) {
  ASSERT_EQ(setenv("BSCHED_JOBS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::defaultWorkerCount(), 3u);
  ExperimentEngine Engine; // Jobs = 0 resolves through the environment.
  EXPECT_EQ(Engine.workerCount(), 3u);

  // Malformed or out-of-range values fall back to hardware concurrency.
  ASSERT_EQ(setenv("BSCHED_JOBS", "0", 1), 0);
  EXPECT_GE(ThreadPool::defaultWorkerCount(), 1u);
  ASSERT_EQ(setenv("BSCHED_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(ThreadPool::defaultWorkerCount(), 1u);
  ASSERT_EQ(unsetenv("BSCHED_JOBS"), 0);
  EXPECT_GE(ThreadPool::defaultWorkerCount(), 1u);
}

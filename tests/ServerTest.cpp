//===- tests/ServerTest.cpp - Compile-service daemon tests ----------------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// The bsched_server lifecycle and fault model (DESIGN.md §3j): the shared
// sharded CompileCache (hit/miss accounting, LRU + byte eviction,
// concurrent hammering), the request core (handleRequest never crashes —
// malformed input becomes ok:false with structured diagnostics), the real
// AF_UNIX socket path (oversized frames answered with BS905, truncated
// frames survived, shutdown under in-flight traffic), operator budget
// clamps, and serial == concurrent determinism.
//
//===----------------------------------------------------------------------===//

#include "obs/FlightRecorder.h"
#include "obs/Log.h"
#include "parser/Parser.h"
#include "server/Server.h"
#include "support/FailPoint.h"
#include "support/JsonValue.h"
#include "support/Socket.h"
#include "support/Statistics.h"
#include "support/Wire.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace bsched;

namespace {

const char *TinyKernel = R"(
func @k {
block body freq 1 {
  %i0 = li 64
  %f0 = fload [%i0 + 0] !a
  %f1 = fadd %f0, %f0
  fstore %f1, [%i0 + 8] !a
  ret
}
}
)";

Function parseOne(const std::string &Source) {
  ParseResult Result = parseIr(Source);
  EXPECT_TRUE(Result.ok());
  return std::move(Result.Functions.front());
}

/// A family of distinct kernels (different immediates => different cache
/// keys) for eviction and concurrency tests.
std::string kernelVariant(unsigned N) {
  std::string S = TinyKernel;
  std::string Needle = "li 64";
  S.replace(S.find(Needle), Needle.size(), "li " + std::to_string(100 + N));
  return S;
}

//===----------------------------------------------------------------------===//
// CompileCache.
//===----------------------------------------------------------------------===//

TEST(CompileCacheTest, SecondCompileIsAHit) {
  CompileCache Cache(CompileCacheConfig::unlimited());
  Function F = parseOne(TinyKernel);
  PipelineConfig Config = PipelineConfig::paperDefault();

  bool Hit = true;
  ErrorOr<CompiledFunction> First = Cache.compile(F, Config, &Hit);
  ASSERT_TRUE(First.has_value());
  EXPECT_FALSE(Hit);

  ErrorOr<CompiledFunction> Second = Cache.compile(F, Config, &Hit);
  ASSERT_TRUE(Second.has_value());
  EXPECT_TRUE(Hit);
  EXPECT_EQ(First->StaticInstructions, Second->StaticInstructions);

  CompileCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.Misses, 1u);
  EXPECT_EQ(Stats.Insertions, 1u);
  EXPECT_EQ(Stats.Entries, 1u);
  EXPECT_GT(Stats.Bytes, 0u);
  EXPECT_DOUBLE_EQ(Stats.hitRate(), 0.5);
}

TEST(CompileCacheTest, DifferentConfigIsADifferentEntry) {
  CompileCache Cache(CompileCacheConfig::unlimited());
  Function F = parseOne(TinyKernel);
  PipelineConfig A = PipelineConfig::paperDefault();
  PipelineConfig B = PipelineConfig::paperDefault();
  B.Policy = SchedulerPolicy::Traditional;

  bool Hit = true;
  ASSERT_TRUE(Cache.compile(F, A, &Hit).has_value());
  EXPECT_FALSE(Hit);
  ASSERT_TRUE(Cache.compile(F, B, &Hit).has_value());
  EXPECT_FALSE(Hit);
  EXPECT_EQ(Cache.size(), 2u);
}

TEST(CompileCacheTest, FailuresAreNeverCached) {
  CompileCache Cache(CompileCacheConfig::unlimited());
  Function F = parseOne(TinyKernel);
  PipelineConfig Config = PipelineConfig::paperDefault();
  Config.Budget.MaxInstructionsPerBlock = 1; // Nothing fits.
  Config.Budget.Degrade = false;

  for (int I = 0; I != 2; ++I) {
    bool Hit = true;
    ErrorOr<CompiledFunction> Result = Cache.compile(F, Config, &Hit);
    EXPECT_FALSE(Result.has_value());
    EXPECT_FALSE(Hit);
  }
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.stats().Misses, 2u);
}

TEST(CompileCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  CompileCacheConfig Geometry;
  Geometry.Shards = 1; // One shard: deterministic LRU order.
  Geometry.MaxBytes = 1;
  CompileCache Cache(Geometry);
  PipelineConfig Config = PipelineConfig::paperDefault();

  // Every entry exceeds the budget on its own, so each insertion evicts
  // its predecessor: the cache stays bounded instead of growing forever.
  for (unsigned N = 0; N != 4; ++N) {
    Function F = parseOne(kernelVariant(N));
    ASSERT_TRUE(Cache.compile(F, Config).has_value());
  }
  CompileCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Insertions, 4u);
  EXPECT_GE(Stats.Evictions, 3u);
  EXPECT_LE(Stats.Entries, 1u);
}

TEST(CompileCacheTest, EntryBudgetBoundsOccupancy) {
  CompileCacheConfig Geometry;
  Geometry.Shards = 1;
  Geometry.MaxBytes = 0;
  Geometry.MaxEntries = 2;
  CompileCache Cache(Geometry);
  PipelineConfig Config = PipelineConfig::paperDefault();

  for (unsigned N = 0; N != 5; ++N)
    ASSERT_TRUE(Cache.compile(parseOne(kernelVariant(N)), Config)
                    .has_value());
  EXPECT_LE(Cache.size(), 2u);
  EXPECT_GE(Cache.stats().Evictions, 3u);

  // The survivors are the most recently used: variant 4 must be a hit.
  bool Hit = false;
  ASSERT_TRUE(
      Cache.compile(parseOne(kernelVariant(4)), Config, &Hit).has_value());
  EXPECT_TRUE(Hit);
}

TEST(CompileCacheTest, ClearDropsEntriesKeepsHistory) {
  CompileCache Cache(CompileCacheConfig::unlimited());
  PipelineConfig Config = PipelineConfig::paperDefault();
  ASSERT_TRUE(Cache.compile(parseOne(TinyKernel), Config).has_value());
  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.bytes(), 0u);
  EXPECT_EQ(Cache.stats().Misses, 1u);
}

TEST(CompileCacheTest, ConcurrentHammeringStaysConsistent) {
  CompileCache Cache(CompileCacheConfig::unlimited());
  PipelineConfig Config = PipelineConfig::paperDefault();
  constexpr unsigned NumThreads = 4;
  constexpr unsigned PerThread = 32;
  constexpr unsigned Distinct = 4;

  std::vector<std::string> Sources;
  for (unsigned N = 0; N != Distinct; ++N)
    Sources.push_back(kernelVariant(N));

  std::atomic<unsigned> Failures{0};
  std::vector<unsigned> Instructions(Distinct, 0);
  {
    // Pre-compile serially to learn the expected per-kernel answer.
    for (unsigned N = 0; N != Distinct; ++N) {
      ErrorOr<CompiledFunction> R =
          Cache.compile(parseOne(Sources[N]), Config);
      ASSERT_TRUE(R.has_value());
      Instructions[N] = R->StaticInstructions;
    }
  }
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I != PerThread; ++I) {
        unsigned N = (T + I) % Distinct;
        ErrorOr<CompiledFunction> R =
            Cache.compile(parseOne(Sources[N]), Config);
        if (!R.has_value() || R->StaticInstructions != Instructions[N])
          ++Failures;
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Failures.load(), 0u);
  CompileCacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits + Stats.Misses,
            static_cast<uint64_t>(NumThreads) * PerThread + Distinct);
  EXPECT_EQ(Stats.Entries, Distinct);
}

//===----------------------------------------------------------------------===//
// The request core (no sockets).
//===----------------------------------------------------------------------===//

std::string compileRequestJson(const std::string &Id,
                               const std::string &Kernel,
                               bool WantSchedule = true) {
  CompileRequest Request;
  Request.Id = Id;
  Request.Kernel = Kernel;
  Request.WantSchedule = WantSchedule;
  return Request.toJson();
}

TEST(ServerCoreTest, CompileAndCacheHit) {
  BschedServer Server({});
  ErrorOr<CompileResponse> First = CompileResponse::fromJson(
      Server.handleRequest(compileRequestJson("a", TinyKernel)));
  ASSERT_TRUE(First.has_value()) << First.errorText();
  EXPECT_TRUE(First->Ok);
  EXPECT_EQ(First->Id, "a");
  EXPECT_FALSE(First->CacheHit);
  EXPECT_GT(First->StaticInstructions, 0u);
  EXPECT_FALSE(First->Schedule.empty());

  ErrorOr<CompileResponse> Second = CompileResponse::fromJson(
      Server.handleRequest(compileRequestJson("b", TinyKernel)));
  ASSERT_TRUE(Second.has_value());
  EXPECT_TRUE(Second->Ok);
  EXPECT_TRUE(Second->CacheHit);
  EXPECT_EQ(Second->StaticInstructions, First->StaticInstructions);
  EXPECT_EQ(Second->Schedule, First->Schedule);
  EXPECT_EQ(Server.requestsServed(), 2u);
}

TEST(ServerCoreTest, MalformedJsonIsStructuredNotFatal) {
  BschedServer Server({});
  ErrorOr<CompileResponse> Response =
      CompileResponse::fromJson(Server.handleRequest("this is not json"));
  ASSERT_TRUE(Response.has_value());
  EXPECT_FALSE(Response->Ok);
  ASSERT_FALSE(Response->Diags.empty());
  EXPECT_EQ(Response->Diags.front().Code, DiagCode::JsonParseError);
}

TEST(ServerCoreTest, BadKernelGetsParserDiagnostics) {
  BschedServer Server({});
  ErrorOr<CompileResponse> Response = CompileResponse::fromJson(
      Server.handleRequest(compileRequestJson("x", "not ir at all")));
  ASSERT_TRUE(Response.has_value());
  EXPECT_FALSE(Response->Ok);
  ASSERT_FALSE(Response->Diags.empty());
  EXPECT_EQ(Response->Diags.front().Code, DiagCode::ParseExpectedToken);
}

TEST(ServerCoreTest, PingEchoesId) {
  BschedServer Server({});
  CompileRequest Ping;
  Ping.Id = "liveness";
  Ping.Op = RequestOp::Ping;
  ErrorOr<CompileResponse> Response =
      CompileResponse::fromJson(Server.handleRequest(Ping.toJson()));
  ASSERT_TRUE(Response.has_value());
  EXPECT_TRUE(Response->Ok);
  EXPECT_EQ(Response->Id, "liveness");
}

TEST(ServerCoreTest, StatsReportsCacheAccounting) {
  BschedServer Server({});
  Server.handleRequest(compileRequestJson("a", TinyKernel));
  Server.handleRequest(compileRequestJson("b", TinyKernel));

  CompileRequest Stats;
  Stats.Id = "s";
  Stats.Op = RequestOp::Stats;
  std::string Raw = Server.handleRequest(Stats.toJson());
  ErrorOr<CompileResponse> Response = CompileResponse::fromJson(Raw);
  ASSERT_TRUE(Response.has_value());
  EXPECT_TRUE(Response->Ok);
  EXPECT_NE(Raw.find("\"hits\":1"), std::string::npos) << Raw;
  EXPECT_NE(Raw.find("\"misses\":1"), std::string::npos) << Raw;
  EXPECT_NE(Raw.find("\"requests_served\""), std::string::npos) << Raw;
}

TEST(ServerCoreTest, OperatorInstructionCeilingClampsRequests) {
  ServerConfig Config;
  Config.MaxInstructionsPerBlock = 2; // Admission: nothing real fits.
  BschedServer Server(Config);
  ErrorOr<CompileResponse> Response = CompileResponse::fromJson(
      Server.handleRequest(compileRequestJson("big", TinyKernel)));
  ASSERT_TRUE(Response.has_value());
  EXPECT_FALSE(Response->Ok);
  ASSERT_FALSE(Response->Diags.empty());
  EXPECT_EQ(Response->Diags.front().Code, DiagCode::GovernorBlockTooLarge);
}

TEST(ServerCoreTest, MultiFunctionKernelRejected) {
  BschedServer Server({});
  std::string Two = std::string(TinyKernel) + TinyKernel;
  ErrorOr<CompileResponse> Response = CompileResponse::fromJson(
      Server.handleRequest(compileRequestJson("two", Two)));
  ASSERT_TRUE(Response.has_value());
  EXPECT_FALSE(Response->Ok);
  ASSERT_FALSE(Response->Diags.empty());
  EXPECT_EQ(Response->Diags.front().Code, DiagCode::ParseNotSingleFunction);
}

TEST(ServerCoreTest, WantMetricsReturnsSnapshot) {
  BschedServer Server({});
  CompileRequest Request;
  Request.Id = "m";
  Request.Kernel = TinyKernel;
  Request.WantSchedule = false;
  Request.WantMetrics = true;
  std::string Raw = Server.handleRequest(Request.toJson());
  EXPECT_NE(Raw.find("\"stats\""), std::string::npos) << Raw;
#ifndef BSCHED_NO_OBS
  EXPECT_NE(Raw.find("bsched.pipeline"), std::string::npos) << Raw;
#endif
}

TEST(ServerCoreTest, SerialEqualsConcurrent) {
  // The same corpus through one server serially and another concurrently
  // must produce identical stable fields (compilation is deterministic;
  // only cache_hit and wall_ms may differ).
  constexpr unsigned Distinct = 4;
  constexpr unsigned Requests = 32;
  std::vector<std::string> Corpus;
  for (unsigned I = 0; I != Requests; ++I)
    Corpus.push_back(compileRequestJson("r" + std::to_string(I),
                                        kernelVariant(I % Distinct)));

  auto StableFields = [](const std::string &Raw) {
    ErrorOr<CompileResponse> R = CompileResponse::fromJson(Raw);
    EXPECT_TRUE(R.has_value());
    return R->Id + "|" + (R->Ok ? "ok" : "fail") + "|" +
           std::to_string(R->StaticInstructions) + "|" +
           std::to_string(R->StaticSpills) + "|" + R->Schedule;
  };

  BschedServer Serial({});
  std::map<std::string, std::string> Expected;
  for (const std::string &Request : Corpus) {
    std::string Key = StableFields(Serial.handleRequest(Request));
    Expected[Key.substr(0, Key.find('|'))] = Key;
  }

  BschedServer Concurrent({});
  std::vector<std::string> Got(Corpus.size());
  std::vector<std::thread> Threads;
  std::atomic<unsigned> NextIndex{0};
  for (unsigned T = 0; T != 4; ++T)
    Threads.emplace_back([&] {
      for (unsigned I; (I = NextIndex.fetch_add(1)) < Corpus.size();)
        Got[I] = StableFields(Concurrent.handleRequest(Corpus[I]));
    });
  for (std::thread &T : Threads)
    T.join();

  for (const std::string &Key : Got) {
    std::string Id = Key.substr(0, Key.find('|'));
    EXPECT_EQ(Key, Expected[Id]);
  }
}

//===----------------------------------------------------------------------===//
// Stdio transport.
//===----------------------------------------------------------------------===//

TEST(ServerStdioTest, ServesNewlineDelimitedRequests) {
  std::FILE *In = std::tmpfile();
  std::FILE *Out = std::tmpfile();
  ASSERT_NE(In, nullptr);
  ASSERT_NE(Out, nullptr);

  std::string Lines = compileRequestJson("a", TinyKernel, false) + "\n" +
                      "\n" + // Blank lines are skipped, not errors.
                      "garbage\n" +
                      compileRequestJson("b", TinyKernel, false) + "\n";
  std::fwrite(Lines.data(), 1, Lines.size(), In);
  std::rewind(In);

  BschedServer Server({});
  EXPECT_EQ(Server.serveLines(In, Out), 3u);

  std::rewind(Out);
  std::vector<std::string> Responses;
  char Buffer[1 << 16];
  while (std::fgets(Buffer, sizeof(Buffer), Out)) {
    std::string Line(Buffer);
    if (!Line.empty() && Line.back() == '\n')
      Line.pop_back();
    Responses.push_back(Line);
  }
  ASSERT_EQ(Responses.size(), 3u);
  ErrorOr<CompileResponse> A = CompileResponse::fromJson(Responses[0]);
  ASSERT_TRUE(A.has_value());
  EXPECT_TRUE(A->Ok);
  EXPECT_EQ(A->Id, "a");
  ErrorOr<CompileResponse> Bad = CompileResponse::fromJson(Responses[1]);
  ASSERT_TRUE(Bad.has_value());
  EXPECT_FALSE(Bad->Ok);
  ErrorOr<CompileResponse> B = CompileResponse::fromJson(Responses[2]);
  ASSERT_TRUE(B.has_value());
  EXPECT_TRUE(B->CacheHit); // Same kernel as "a": the shared cache answered.

  std::fclose(In);
  std::fclose(Out);
}

//===----------------------------------------------------------------------===//
// The real socket path.
//===----------------------------------------------------------------------===//

class SocketServerTest : public ::testing::Test {
protected:
  void SetUp() override {
    char Template[] = "/tmp/bsched_test_XXXXXX";
    ASSERT_NE(mkdtemp(Template), nullptr);
    Dir = Template;
    Config.SocketPath = Dir + "/srv.sock";
  }

  void TearDown() override {
    unlink(Config.SocketPath.c_str());
    rmdir(Dir.c_str());
  }

  /// One request/response exchange over a fresh connection.
  ErrorOr<CompileResponse> roundTrip(const std::string &Request) {
    ErrorOr<FdHandle> Conn = connectUnix(Config.SocketPath);
    if (!Conn)
      return Conn.takeErrors();
    if (!writeFrame(Conn->get(), Request).ok())
      return Diagnostic{0, 0, "write failed", Severity::Error,
                        DiagCode::WireIo};
    std::string Payload;
    if (readFrame(Conn->get(), Payload, DefaultMaxFrameBytes, nullptr) !=
        FrameStatus::Frame)
      return Diagnostic{0, 0, "no response frame", Severity::Error,
                        DiagCode::WireIo};
    return CompileResponse::fromJson(Payload);
  }

  std::string Dir;
  ServerConfig Config;
};

TEST_F(SocketServerTest, StartServeStop) {
  BschedServer Server(Config);
  ASSERT_TRUE(Server.start().ok());

  ErrorOr<CompileResponse> Response =
      roundTrip(compileRequestJson("s1", TinyKernel));
  ASSERT_TRUE(Response.has_value()) << Response.errorText();
  EXPECT_TRUE(Response->Ok);
  EXPECT_EQ(Response->Id, "s1");

  Server.stop();
  // After stop the listener is gone: connect must fail (quickly).
  EXPECT_FALSE(connectUnix(Config.SocketPath, /*RetryMs=*/50).has_value());
}

TEST_F(SocketServerTest, StopIsIdempotentAndRestartable) {
  BschedServer Server(Config);
  ASSERT_TRUE(Server.start().ok());
  Server.stop();
  Server.stop(); // Second stop: no deadlock, no crash.
}

TEST_F(SocketServerTest, OversizedFrameAnsweredWithBS905) {
  // Big enough for real requests, small enough to reject hostile ones.
  Config.MaxFrameBytes = 4096;
  BschedServer Server(Config);
  ASSERT_TRUE(Server.start().ok());

  ErrorOr<FdHandle> Conn = connectUnix(Config.SocketPath);
  ASSERT_TRUE(Conn.has_value());
  std::string Huge(8192, 'x'); // Over the ceiling.
  ASSERT_TRUE(writeFrame(Conn->get(), Huge).ok());

  std::string Payload;
  ASSERT_EQ(readFrame(Conn->get(), Payload, DefaultMaxFrameBytes, nullptr),
            FrameStatus::Frame);
  ErrorOr<CompileResponse> Response = CompileResponse::fromJson(Payload);
  ASSERT_TRUE(Response.has_value());
  EXPECT_FALSE(Response->Ok);
  ASSERT_FALSE(Response->Diags.empty());
  EXPECT_EQ(Response->Diags.front().Code, DiagCode::WireFrameTooLarge);

  // The connection closes after the error (stream out of sync). The
  // server never read the oversized payload, so the close may surface as
  // a reset (Error) instead of a clean EOF — either way, no more frames.
  EXPECT_NE(readFrame(Conn->get(), Payload, DefaultMaxFrameBytes, nullptr),
            FrameStatus::Frame);
  // ... but the daemon is fine: a new connection compiles normally.
  ErrorOr<CompileResponse> Next =
      roundTrip(compileRequestJson("after", TinyKernel));
  ASSERT_TRUE(Next.has_value());
  EXPECT_TRUE(Next->Ok);
  Server.stop();
}

TEST_F(SocketServerTest, TruncatedFrameDoesNotKillTheDaemon) {
  BschedServer Server(Config);
  ASSERT_TRUE(Server.start().ok());
  {
    // Two bytes of length prefix, then vanish mid-frame.
    ErrorOr<FdHandle> Conn = connectUnix(Config.SocketPath);
    ASSERT_TRUE(Conn.has_value());
    const unsigned char Partial[2] = {0x00, 0x00};
    ASSERT_EQ(::send(Conn->get(), Partial, sizeof(Partial), MSG_NOSIGNAL),
              2);
  } // FdHandle closes the socket here.

  ErrorOr<CompileResponse> Response =
      roundTrip(compileRequestJson("alive", TinyKernel));
  ASSERT_TRUE(Response.has_value()) << Response.errorText();
  EXPECT_TRUE(Response->Ok);
  Server.stop();
}

TEST_F(SocketServerTest, ShutdownAnswersInFlightRequests) {
  BschedServer Server(Config);
  ASSERT_TRUE(Server.start().ok());

  // A deliberately large kernel so the compile is still in flight when
  // stop() lands: shutdown half-closes the connection for reading but
  // must let the in-flight response out.
  std::string Big = "func @big {\nblock body freq 1 {\n  %i0 = li 8\n";
  for (unsigned I = 0; I != 600; ++I)
    Big += "  %f" + std::to_string(I % 14) + " = fload [%i0 + " +
           std::to_string(8 * I) + "] !a\n";
  Big += "  ret\n}\n}\n";

  ErrorOr<FdHandle> Conn = connectUnix(Config.SocketPath);
  ASSERT_TRUE(Conn.has_value());
  ASSERT_TRUE(writeFrame(Conn->get(), compileRequestJson("inflight", Big,
                                                         /*WantSchedule=*/
                                                         false))
                  .ok());
  std::thread Stopper([&] { Server.stop(); });

  std::string Payload;
  FrameStatus Status =
      readFrame(Conn->get(), Payload, DefaultMaxFrameBytes, nullptr);
  Stopper.join();

  // Three legitimate outcomes, none of them a crash, hang or dropped
  // frame: the compile was in flight and completes (ok:true); the server
  // read the request after Stopping was set and refused it with a
  // structured BS908; or stop's half-close won before the request was
  // read at all (EOF).
  if (Status == FrameStatus::Frame) {
    ErrorOr<CompileResponse> Response = CompileResponse::fromJson(Payload);
    ASSERT_TRUE(Response.has_value());
    EXPECT_EQ(Response->Id, "inflight");
    if (!Response->Ok) {
      ASSERT_FALSE(Response->Diags.empty());
      EXPECT_EQ(Response->Diags.front().Code, DiagCode::ServerShutdown);
    }
  } else {
    EXPECT_EQ(Status, FrameStatus::Eof);
  }
}

TEST_F(SocketServerTest, ConcurrentConnectionsShareTheCache) {
  MetricRegistry Metrics;
  BschedServer Server(Config, &Metrics);
  ASSERT_TRUE(Server.start().ok());

  constexpr unsigned NumClients = 8;
  constexpr unsigned PerClient = 8;
  std::atomic<unsigned> OkCount{0};
  std::vector<std::thread> Clients;
  for (unsigned C = 0; C != NumClients; ++C)
    Clients.emplace_back([&, C] {
      ErrorOr<FdHandle> Conn = connectUnix(Config.SocketPath);
      if (!Conn)
        return;
      std::string Payload;
      for (unsigned I = 0; I != PerClient; ++I) {
        std::string Request = compileRequestJson(
            "c" + std::to_string(C) + "_" + std::to_string(I),
            kernelVariant(I % 2), /*WantSchedule=*/false);
        if (!writeFrame(Conn->get(), Request).ok())
          return;
        if (readFrame(Conn->get(), Payload, DefaultMaxFrameBytes, nullptr) !=
            FrameStatus::Frame)
          return;
        ErrorOr<CompileResponse> R = CompileResponse::fromJson(Payload);
        if (R.has_value() && R->Ok)
          ++OkCount;
      }
    });
  for (std::thread &T : Clients)
    T.join();
  Server.stop();

  EXPECT_EQ(OkCount.load(), NumClients * PerClient);
  // Two distinct kernels across 64 requests: the shared cache carried the
  // bulk of the load. The cache deliberately drops its shard lock during a
  // compile, so concurrent first requests for the same kernel may each
  // miss (a bounded thundering herd) — misses are at least one per kernel,
  // at most one per client per kernel, and every other request hit.
  CompileCacheStats Stats = Server.cache().stats();
  EXPECT_GE(Stats.Misses, 2u);
  EXPECT_LE(Stats.Misses, 2u * NumClients);
  EXPECT_EQ(Stats.Hits + Stats.Misses, NumClients * PerClient);
  EXPECT_EQ(Stats.Entries, 2u);
}

//===----------------------------------------------------------------------===//
// Telemetry: request correlation, per-op latency accounting, the metrics
// op, and the flight-recorder dump path (DESIGN.md §3l).
//===----------------------------------------------------------------------===//

/// Points Logger::global() at a tmpfile for one test and restores the
/// detached default afterwards (the global logger outlives every test).
class ScopedGlobalSink {
public:
  explicit ScopedGlobalSink(LogLevel Level) : File(std::tmpfile()) {
    Logger::global().setSink(File);
    Logger::global().setLevel(Level);
  }
  ~ScopedGlobalSink() {
    Logger::global().closeSink();
    Logger::global().setLevel(LogLevel::Info);
    if (File)
      std::fclose(File);
  }

  std::vector<std::string> lines() {
    std::fflush(File);
    std::rewind(File);
    std::vector<std::string> Lines;
    std::string Current;
    int C;
    while ((C = std::fgetc(File)) != EOF) {
      if (C == '\n') {
        Lines.push_back(Current);
        Current.clear();
      } else {
        Current.push_back(static_cast<char>(C));
      }
    }
    return Lines;
  }

private:
  std::FILE *File;
};

TEST(ServerTelemetryTest, GeneratesRequestIdWhenClientOmitsIt) {
  BschedServer Server({});
  CompileRequest Ping;
  Ping.Op = RequestOp::Ping; // No id.
  ErrorOr<CompileResponse> First =
      CompileResponse::fromJson(Server.handleRequest(Ping.toJson()));
  ASSERT_TRUE(First.has_value());
  EXPECT_EQ(First->Id.rfind("srv-", 0), 0u) << First->Id;

  ErrorOr<CompileResponse> Second =
      CompileResponse::fromJson(Server.handleRequest(Ping.toJson()));
  ASSERT_TRUE(Second.has_value());
  EXPECT_EQ(Second->Id.rfind("srv-", 0), 0u);
  EXPECT_NE(Second->Id, First->Id); // Ids are unique per request.

  // A client-supplied id is echoed untouched.
  ErrorOr<CompileResponse> Echoed = CompileResponse::fromJson(
      Server.handleRequest(compileRequestJson("mine", TinyKernel)));
  ASSERT_TRUE(Echoed.has_value());
  EXPECT_EQ(Echoed->Id, "mine");

  // Even an unparseable payload gets a generated id: the error response
  // must still carry a key the operator can correlate with the log.
  ErrorOr<CompileResponse> Bad =
      CompileResponse::fromJson(Server.handleRequest("not json"));
  ASSERT_TRUE(Bad.has_value());
  EXPECT_FALSE(Bad->Ok);
  EXPECT_EQ(Bad->Id.rfind("srv-", 0), 0u) << Bad->Id;
}

TEST(ServerTelemetryTest, MetricsOpReturnsJsonAndPrometheus) {
  BschedServer Server({});
  Server.handleRequest(compileRequestJson("warm", TinyKernel));

  CompileRequest Json;
  Json.Id = "m1";
  Json.Op = RequestOp::Metrics;
  std::string RawJson = Server.handleRequest(Json.toJson());
  // The snapshot rides in the response's raw "stats" field (opaque to the
  // client-side struct, so inspect the document itself).
  ErrorOr<JsonValue> JsonDoc = parseJson(RawJson);
  ASSERT_TRUE(JsonDoc.has_value()) << RawJson;
  EXPECT_TRUE(JsonDoc->find("ok")->asBool());
  const JsonValue *Snapshot = JsonDoc->find("stats");
  ASSERT_NE(Snapshot, nullptr);
  ASSERT_TRUE(Snapshot->isObject());
  EXPECT_NE(Snapshot->find("counters"), nullptr);

  CompileRequest Prom;
  Prom.Id = "m2";
  Prom.Op = RequestOp::Metrics;
  Prom.MetricsFormat = "prometheus";
  ErrorOr<CompileResponse> PromResp =
      CompileResponse::fromJson(Server.handleRequest(Prom.toJson()));
  ASSERT_TRUE(PromResp.has_value());
  EXPECT_TRUE(PromResp->Ok);
#ifndef BSCHED_NO_OBS
  ASSERT_NE(Snapshot->find("counters")->find("bsched.server.requests"),
            nullptr);
  EXPECT_NE(PromResp->MetricsText.find("# TYPE bsched_server_requests "
                                       "counter"),
            std::string::npos)
      << PromResp->MetricsText;
  EXPECT_NE(PromResp->MetricsText.find(
                "bsched_server_latency_us_compile_bucket{le=\"+Inf\"}"),
            std::string::npos);
#endif
}

TEST(ServerTelemetryTest, StatsReportPerOpLatencyQuantiles) {
  BschedServer Server({});
  for (int I = 0; I != 8; ++I) {
    CompileRequest Ping;
    Ping.Op = RequestOp::Ping;
    Server.handleRequest(Ping.toJson());
  }
  CompileRequest Stats;
  Stats.Id = "s";
  Stats.Op = RequestOp::Stats;
  std::string Raw = Server.handleRequest(Stats.toJson());
  ErrorOr<JsonValue> Doc = parseJson(Raw);
  ASSERT_TRUE(Doc.has_value()) << Raw;
  ASSERT_NE(Doc->find("stats"), nullptr);
  const JsonValue *Latency = Doc->find("stats")->find("latency_us");
  ASSERT_NE(Latency, nullptr);
  ASSERT_TRUE(Latency->isObject());
#ifdef BSCHED_NO_OBS
  // Without the telemetry layer there are no histograms to report; the
  // section stays present (schema-stable) but empty.
  for (const char *Op : {"compile", "stats", "metrics", "ping", "invalid"})
    EXPECT_EQ(Latency->find(Op), nullptr) << Op;
#else
  for (const char *Op : {"compile", "stats", "metrics", "ping", "invalid"})
    ASSERT_NE(Latency->find(Op), nullptr) << Op;
  const JsonValue *Ping = Latency->find("ping");
  EXPECT_EQ(Ping->find("count")->asNumber(), 8.0);
  const double P50 = Ping->find("p50")->asNumber();
  const double P99 = Ping->find("p99")->asNumber();
  EXPECT_GT(P50, 0.0);
  EXPECT_LE(P50, P99);
  EXPECT_LE(P99, Ping->find("max")->asNumber());
  EXPECT_GE(P50, Ping->find("min")->asNumber());
#endif
}

#ifndef BSCHED_NO_OBS
TEST(ServerTelemetryTest, ServerQuantilesAgreeWithClientSide) {
  // The acceptance contract: bucket-estimated server quantiles must land
  // within one log-spaced bucket (a factor of two) of the client-visible
  // exact percentiles over the same requests, at concurrency 8. The
  // client-side reference is each response's own wall_ms — the exact
  // samples the histogram recorded, which the loadgen also collects —
  // so the comparison isolates bucket interpolation and is immune to the
  // scheduling noise a loaded ctest run adds to wall-clock stamps taken
  // around handleRequest.
  BschedServer Server({});
  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 8;
  std::vector<std::vector<double>> PerThreadUs(Threads);
  std::vector<std::thread> Workers;
  std::atomic<unsigned> BadResponses{0};
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&, T] {
      for (unsigned I = 0; I != PerThread; ++I) {
        std::string Request = compileRequestJson(
            "q" + std::to_string(T) + "_" + std::to_string(I),
            kernelVariant(T), /*WantSchedule=*/false);
        ErrorOr<CompileResponse> Response =
            CompileResponse::fromJson(Server.handleRequest(Request));
        if (!Response) {
          ++BadResponses;
          continue;
        }
        PerThreadUs[T].push_back(Response->WallMs * 1000.0);
      }
    });
  for (std::thread &W : Workers)
    W.join();
  ASSERT_EQ(BadResponses.load(), 0u);

  std::vector<double> ClientUs;
  for (const std::vector<double> &Thread : PerThreadUs)
    ClientUs.insert(ClientUs.end(), Thread.begin(), Thread.end());
  std::sort(ClientUs.begin(), ClientUs.end());

  CompileRequest Stats;
  Stats.Op = RequestOp::Stats;
  ErrorOr<JsonValue> Doc = parseJson(Server.handleRequest(Stats.toJson()));
  ASSERT_TRUE(Doc.has_value());
  const JsonValue *Compile =
      Doc->find("stats")->find("latency_us")->find("compile");
  ASSERT_NE(Compile, nullptr);
  ASSERT_EQ(Compile->find("count")->asNumber(), double(Threads * PerThread));

  constexpr double SlackUs = 50.0; // wall_ms is serialized at 1us grain.
  const size_t N = ClientUs.size();
  for (auto [Key, Q] : {std::pair<const char *, double>{"p50", 0.50},
                        {"p90", 0.90},
                        {"p99", 0.99}}) {
    const double ServerEst = Compile->find(Key)->asNumber();
    // The estimate interpolates inside the power-of-two bucket holding
    // the target order statistic; percentile() instead interpolates
    // *between* the two bracketing order statistics, which an extreme
    // outlier can pull arbitrarily far from either. The guaranteed bound
    // is therefore factor-two against the bracket itself.
    const double Lo = ClientUs[static_cast<size_t>(double(N - 1) * Q)];
    const double Hi =
        ClientUs[static_cast<size_t>(std::ceil(double(N - 1) * Q))];
    EXPECT_LE(ServerEst, 2.0 * Hi + SlackUs)
        << Key << ": server " << ServerEst << " bracket [" << Lo << ", "
        << Hi << "]";
    EXPECT_LE(Lo, 2.0 * ServerEst + SlackUs)
        << Key << ": server " << ServerEst << " bracket [" << Lo << ", "
        << Hi << "]";
    // Sanity: the exact interpolated percentile lies inside the bracket.
    const double Exact = percentile(ClientUs, Q);
    EXPECT_GE(Exact, Lo);
    EXPECT_LE(Exact, Hi);
  }
}
#endif // BSCHED_NO_OBS

#if !defined(BSCHED_NO_FAILPOINTS) && !defined(BSCHED_NO_OBS)
TEST(ServerTelemetryTest, InjectedFaultDumpsFlightRecorder) {
  // The chaos acceptance path: an armed BS810 fail point must leave a
  // parseable flight-recorder dump in the log naming the failing site and
  // the request id.
  FlightRecorder::global().clear();
  ScopedGlobalSink Sink(LogLevel::Error);
  ScopedFailPoint Arm(failpoints::RegAlloc, 1.0, 42);

  BschedServer Server({});
  ErrorOr<CompileResponse> Response = CompileResponse::fromJson(
      Server.handleRequest(compileRequestJson("doomed", TinyKernel)));
  ASSERT_TRUE(Response.has_value());
  EXPECT_FALSE(Response->Ok);
  ASSERT_FALSE(Response->Diags.empty());
  EXPECT_EQ(Response->Diags.front().Code, DiagCode::InjectedFault);

  const JsonValue *DumpLine = nullptr;
  std::vector<std::string> Lines = Sink.lines();
  std::vector<ErrorOr<JsonValue>> Parsed;
  Parsed.reserve(Lines.size()); // DumpLine points into Parsed.
  for (const std::string &Line : Lines) {
    Parsed.push_back(parseJson(Line));
    ASSERT_TRUE(Parsed.back().has_value()) << Line;
    if (Parsed.back()->find("msg")->asString() == "flight-recorder dump")
      DumpLine = &*Parsed.back();
  }
  ASSERT_NE(DumpLine, nullptr);
  const JsonValue *Fields = DumpLine->find("fields");
  EXPECT_EQ(Fields->find("request_id")->asString(), "doomed");
  EXPECT_EQ(Fields->find("trigger")->asString(), "BS810");

  // The embedded dump is itself valid JSON whose ring contains the
  // failure event: id, code, and the failing site by name.
  const JsonValue *Dump = Fields->find("dump")->find("flight_recorder");
  ASSERT_NE(Dump, nullptr);
  EXPECT_EQ(Dump->find("trigger")->asString(), "BS810");
  bool FoundFailure = false;
  for (const JsonValue &Event : Dump->find("events")->elements()) {
    if (Event.find("msg")->asString() != "request failed")
      continue;
    FoundFailure = true;
    const JsonValue *EventFields = Event.find("fields");
    EXPECT_EQ(EventFields->find("request_id")->asString(), "doomed");
    EXPECT_EQ(EventFields->find("code")->asString(), "BS810");
    EXPECT_NE(EventFields->find("message")->asString().find("regalloc"),
              std::string::npos);
  }
  EXPECT_TRUE(FoundFailure);
}
#endif // !BSCHED_NO_FAILPOINTS && !BSCHED_NO_OBS

#ifndef BSCHED_NO_OBS
TEST(ServerTelemetryTest, SlowRequestsLogTheSpanTree) {
  ScopedGlobalSink Sink(LogLevel::Warn);
  ServerConfig Config;
  Config.SlowRequestMs = 1e-6; // Everything is an outlier.
  BschedServer Server(Config);
  Server.handleRequest(compileRequestJson("laggard", TinyKernel));

  bool FoundSlow = false;
  for (const std::string &Line : Sink.lines()) {
    ErrorOr<JsonValue> Event = parseJson(Line);
    ASSERT_TRUE(Event.has_value()) << Line;
    if (Event->find("msg")->asString() != "slow request")
      continue;
    FoundSlow = true;
    const JsonValue *Fields = Event->find("fields");
    EXPECT_EQ(Fields->find("request_id")->asString(), "laggard");
    EXPECT_EQ(Fields->find("op")->asString(), "compile");
    EXPECT_GT(Fields->find("wall_ms")->asNumber(), 0.0);
    // The span tree rode along: a Chrome-trace document with the
    // pipeline's phase spans for exactly this request.
    const JsonValue *Trace = Fields->find("trace");
    ASSERT_NE(Trace, nullptr);
    ASSERT_TRUE(Trace->find("traceEvents")->isArray());
    EXPECT_FALSE(Trace->find("traceEvents")->elements().empty());
  }
  EXPECT_TRUE(FoundSlow);
}
#endif // BSCHED_NO_OBS

} // namespace

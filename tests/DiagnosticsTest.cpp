//===- tests/DiagnosticsTest.cpp - Golden-message diagnostic tests --------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// Golden tests for the recoverable-error infrastructure: exact messages,
// stable BS codes, and 1-based source locations for lexer, parser,
// verifier, and frontend failures. These messages are part of the public
// surface — a change here is a user-visible break, not a refactor.
//
//===----------------------------------------------------------------------===//

#include "frontend/KernelLang.h"
#include "ir/IrVerifier.h"
#include "parser/Parser.h"
#include "support/Diagnostic.h"
#include "support/ErrorOr.h"

#include <gtest/gtest.h>

using namespace bsched;

namespace {

Reg vi(unsigned Id) { return Reg::makeVirtual(RegClass::Int, Id); }
Reg vf(unsigned Id) { return Reg::makeVirtual(RegClass::Fp, Id); }

const Diagnostic *firstError(const std::vector<Diagnostic> &Diags) {
  for (const Diagnostic &D : Diags)
    if (D.isError())
      return &D;
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

TEST(DiagnosticsTest, FormattedCarriesFileLocationSeverityAndCode) {
  Diagnostic D{3, 5, "unknown mnemonic 'bogus'", Severity::Error,
               DiagCode::ParseUnknownMnemonic};
  EXPECT_EQ(D.formatted("k.bsir"),
            "k.bsir:3:5: error[BS201]: unknown mnemonic 'bogus'");
  EXPECT_EQ(D.formatted(), "3:5: error[BS201]: unknown mnemonic 'bogus'");
  EXPECT_EQ(D.str(), "line 3, col 5: unknown mnemonic 'bogus'");
}

TEST(DiagnosticsTest, FormattedWithoutLocationOrCode) {
  Diagnostic W{0, 0, "block 'b' is empty", Severity::Warning,
               DiagCode::VerifyEmptyBlock};
  EXPECT_EQ(W.formatted("w.bsir"), "w.bsir: warning[BS307]: block 'b' is empty");
  EXPECT_EQ(W.formatted(), "warning[BS307]: block 'b' is empty");
  EXPECT_EQ(W.str(), "block 'b' is empty");

  Diagnostic Plain{0, 0, "plain", Severity::Error, DiagCode::Unknown};
  EXPECT_EQ(Plain.formatted(), "error: plain");
}

TEST(DiagnosticsTest, EngineCollectsAndDistinguishesSeverities) {
  DiagnosticEngine Engine;
  EXPECT_TRUE(Engine.empty());
  Engine.warning(DiagCode::VerifyEmptyBlock, 0, 0, "w");
  EXPECT_FALSE(Engine.hasErrors());
  Engine.error(DiagCode::PipelineBadConfig, 0, 0, "e");
  EXPECT_TRUE(Engine.hasErrors());
  EXPECT_EQ(Engine.errorCount(), 1u);
  std::vector<Diagnostic> Taken = Engine.take();
  EXPECT_EQ(Taken.size(), 2u);
  EXPECT_TRUE(Engine.empty());
}

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(DiagnosticsTest, LexerUnexpectedCharacter) {
  ParseResult R = parseIr("func @f { block b {\n  ^ ret\n} }");
  ASSERT_FALSE(R.ok());
  const Diagnostic *D = firstError(R.Diags);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Code, DiagCode::LexUnexpectedChar);
  EXPECT_EQ(D->Message, "unexpected character");
  EXPECT_EQ(D->Line, 2u);
  EXPECT_EQ(D->Col, 3u);
}

TEST(DiagnosticsTest, LexerBadRegisterClass) {
  ParseResult R = parseIr("func @f { block b {\n%x0 = li 0\nret } }");
  ASSERT_FALSE(R.ok());
  const Diagnostic *D = firstError(R.Diags);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Code, DiagCode::LexBadRegisterClass);
  EXPECT_EQ(D->Message, "expected 'i' or 'f' after register sigil");
  EXPECT_EQ(D->Line, 2u);
}

TEST(DiagnosticsTest, LexerBadRegisterNumber) {
  ParseResult R = parseIr("func @f { block b {\n%i = li 0\nret } }");
  ASSERT_FALSE(R.ok());
  const Diagnostic *D = firstError(R.Diags);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Code, DiagCode::LexBadRegisterNumber);
  EXPECT_EQ(D->Message, "expected register number");
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(DiagnosticsTest, ParserUnknownMnemonic) {
  ParseResult R = parseIr("func @f { block b {\n%i0 = bogus 1\nret } }");
  ASSERT_FALSE(R.ok());
  const Diagnostic *D = firstError(R.Diags);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Code, DiagCode::ParseUnknownMnemonic);
  EXPECT_EQ(D->Message, "unknown mnemonic 'bogus'");
  EXPECT_EQ(D->Line, 2u);
}

TEST(DiagnosticsTest, ParserExpectedFunc) {
  ParseResult R = parseIr("flub @f { }");
  ASSERT_FALSE(R.ok());
  const Diagnostic *D = firstError(R.Diags);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Code, DiagCode::ParseExpectedToken);
  EXPECT_EQ(D->Message, "expected 'func'");
}

TEST(DiagnosticsTest, ParserNotSingleFunction) {
  ErrorOr<Function> F =
      parseSingleFunction("func @a { block b { ret } }\n"
                          "func @c { block d { ret } }");
  ASSERT_FALSE(F.has_value());
  ASSERT_FALSE(F.errors().empty());
  EXPECT_EQ(F.errors()[0].Code, DiagCode::ParseNotSingleFunction);
  EXPECT_EQ(F.errors()[0].Message, "expected exactly one function, found 2");
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

TEST(DiagnosticsTest, VerifierBranchOutOfRange) {
  Function F("f");
  BasicBlock &BB = F.addBlock("entry");
  BB.append(Instruction::makeLoadImm(vi(0), 0));
  BB.append(Instruction::makeJump(7));
  std::vector<Diagnostic> Diags = verifyFunction(F);
  const Diagnostic *D = firstError(Diags);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Code, DiagCode::VerifyBranchOutOfRange);
  EXPECT_EQ(D->Message, "block 'entry', instruction 1: branch target 7 "
                        "out of range (function has 1 blocks)");
}

TEST(DiagnosticsTest, VerifierOperandClassMismatch) {
  Function F("f");
  BasicBlock &BB = F.addBlock("b");
  // fadd expects two fp sources; source 0 is an int register.
  BB.append(Instruction::makeBinary(Opcode::FAdd, vf(0), vi(1), vf(2)));
  BB.append(Instruction::makeRet());
  std::vector<Diagnostic> Diags = verifyFunction(F);
  const Diagnostic *D = firstError(Diags);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Code, DiagCode::VerifyOperandClass);
  EXPECT_EQ(D->Message, "block 'b', instruction 0: source operand 0 "
                        "register class does not match opcode");
}

TEST(DiagnosticsTest, VerifierDestClassMismatch) {
  Function F("f");
  BasicBlock &BB = F.addBlock("b");
  // add produces an int result; the destination is an fp register.
  BB.append(Instruction::makeBinary(Opcode::Add, vf(0), vi(1), vi(2)));
  BB.append(Instruction::makeRet());
  std::vector<Diagnostic> Diags = verifyFunction(F);
  const Diagnostic *D = firstError(Diags);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Code, DiagCode::VerifyOperandClass);
  EXPECT_EQ(D->Message, "block 'b', instruction 0: destination register "
                        "class does not match opcode");
}

TEST(DiagnosticsTest, VerifierMissingAliasClass) {
  Function F("f");
  BasicBlock &BB = F.addBlock("b");
  BB.append(Instruction::makeLoadImm(vi(0), 0));
  BB.append(Instruction::makeLoad(Opcode::FLoad, vf(0), vi(0), 8, -1));
  BB.append(Instruction::makeRet());
  std::vector<Diagnostic> Diags = verifyFunction(F);
  const Diagnostic *D = firstError(Diags);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Code, DiagCode::VerifyMissingAliasClass);
  EXPECT_EQ(D->Message, "block 'b', instruction 1: memory operation "
                        "without an alias class");
}

TEST(DiagnosticsTest, VerifierEmptyBlockIsWarningNotError) {
  Function F("f");
  F.addBlock("b");
  std::vector<Diagnostic> Diags = verifyFunction(F);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Sev, Severity::Warning);
  EXPECT_EQ(Diags[0].Code, DiagCode::VerifyEmptyBlock);
  EXPECT_EQ(Diags[0].Message, "block 'b' is empty");
  EXPECT_TRUE(verifyClean(Diags)); // Warnings do not fail verification.
}

TEST(DiagnosticsTest, VerifierNoBlocksIsWarning) {
  Function F("f");
  std::vector<Diagnostic> Diags = verifyFunction(F);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Sev, Severity::Warning);
  EXPECT_EQ(Diags[0].Code, DiagCode::VerifyNoBlocks);
  EXPECT_EQ(Diags[0].Message, "function 'f' has no blocks");
}

//===----------------------------------------------------------------------===//
// Frontend
//===----------------------------------------------------------------------===//

TEST(DiagnosticsTest, FrontendSyntaxError) {
  KernelLangResult R = compileKernelLang("routine k() { }");
  EXPECT_FALSE(R.ok());
  const Diagnostic *D = firstError(R.Diags);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Code, DiagCode::FrontendSyntax);
  EXPECT_EQ(D->Message, "expected 'kernel'");
}

TEST(DiagnosticsTest, FrontendSemanticError) {
  KernelLangResult R =
      compileKernelLang("kernel k(a) freq 10 {\n  a[0] = s;\n}");
  EXPECT_FALSE(R.ok());
  const Diagnostic *D = firstError(R.Diags);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Code, DiagCode::FrontendSemantic);
  EXPECT_EQ(D->Message, "scalar 's' read before assignment");
}

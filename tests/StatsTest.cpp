//===- tests/StatsTest.cpp - Unit tests for bootstrap statistics ----------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "stats/Bootstrap.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace bsched;

TEST(BootstrapTest, MeansClusterAroundSampleMean) {
  std::vector<double> Samples;
  for (int I = 0; I != 30; ++I)
    Samples.push_back(100.0 + I); // Mean 114.5.
  Rng R(1);
  std::vector<double> Means = bootstrapMeans(Samples, 200, R);
  ASSERT_EQ(Means.size(), 200u);
  EXPECT_NEAR(mean(Means), 114.5, 1.0);
  for (double M : Means) {
    EXPECT_GE(M, 100.0);
    EXPECT_LE(M, 129.0);
  }
}

TEST(BootstrapTest, ConstantSamplesGiveConstantMeans) {
  std::vector<double> Samples(30, 42.0);
  Rng R(2);
  for (double M : bootstrapMeans(Samples, 50, R))
    EXPECT_DOUBLE_EQ(M, 42.0);
}

TEST(BootstrapTest, DeterministicGivenSeed) {
  std::vector<double> Samples{1, 2, 3, 4, 5, 6, 7, 8};
  Rng R1(7), R2(7);
  EXPECT_EQ(bootstrapMeans(Samples, 20, R1), bootstrapMeans(Samples, 20, R2));
}

TEST(BootstrapTest, ResampleVarianceShrinksWithSampleSize) {
  Rng Data(3);
  std::vector<double> Small, Large;
  for (int I = 0; I != 10; ++I)
    Small.push_back(50.0 + 10.0 * Data.nextGaussian());
  for (int I = 0; I != 1000; ++I)
    Large.push_back(50.0 + 10.0 * Data.nextGaussian());
  Rng R1(4), R2(4);
  double SpreadSmall = stddev(bootstrapMeans(Small, 200, R1));
  double SpreadLarge = stddev(bootstrapMeans(Large, 200, R2));
  EXPECT_GT(SpreadSmall, SpreadLarge);
}

TEST(PairedImprovementTest, PositiveWhenCandidateFaster) {
  std::vector<double> Base(100, 200.0);
  std::vector<double> Cand(100, 150.0);
  ImprovementEstimate E = pairedImprovement(Base, Cand);
  EXPECT_NEAR(E.MeanPercent, 25.0, 1e-12);
  EXPECT_NEAR(E.Ci95.Lo, 25.0, 1e-12);
  EXPECT_NEAR(E.Ci95.Hi, 25.0, 1e-12);
  EXPECT_TRUE(E.significant());
}

TEST(PairedImprovementTest, NegativeWhenCandidateSlower) {
  std::vector<double> Base(100, 100.0);
  std::vector<double> Cand(100, 110.0);
  ImprovementEstimate E = pairedImprovement(Base, Cand);
  EXPECT_NEAR(E.MeanPercent, -10.0, 1e-12);
  EXPECT_TRUE(E.significant());
}

TEST(PairedImprovementTest, CiBracketsNoisyDifferences) {
  Rng R(11);
  std::vector<double> Base, Cand;
  for (int I = 0; I != 100; ++I) {
    Base.push_back(100.0 + R.nextGaussian());
    Cand.push_back(95.0 + R.nextGaussian());
  }
  ImprovementEstimate E = pairedImprovement(Base, Cand);
  EXPECT_NEAR(E.MeanPercent, 5.0, 1.0);
  EXPECT_LT(E.Ci95.Lo, E.MeanPercent);
  EXPECT_GT(E.Ci95.Hi, E.MeanPercent);
  EXPECT_TRUE(E.significant());
}

TEST(PairedImprovementTest, InsignificantWhenOverlapping) {
  Rng R(13);
  std::vector<double> Base, Cand;
  for (int I = 0; I != 100; ++I) {
    Base.push_back(100.0 + 5.0 * R.nextGaussian());
    Cand.push_back(100.0 + 5.0 * R.nextGaussian());
  }
  ImprovementEstimate E = pairedImprovement(Base, Cand);
  EXPECT_FALSE(E.significant());
}

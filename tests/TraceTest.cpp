//===- tests/TraceTest.cpp - Superblock formation tests -------------------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "ir/IrPrinter.h"
#include "ir/IrVerifier.h"
#include "trace/TraceFormation.h"
#include "workload/PerfectClub.h"

#include <gtest/gtest.h>

using namespace bsched;

namespace {
Reg vi(unsigned Id) { return Reg::makeVirtual(RegClass::Int, Id); }

/// A block holding \p N trivial instructions, appended to \p F.
BasicBlock &addWork(Function &F, const std::string &Name, unsigned N,
                    double Freq = 1.0) {
  BasicBlock &BB = F.addBlock(Name, Freq);
  for (unsigned I = 0; I != N; ++I)
    BB.append(Instruction::makeLoadImm(F.makeVirtualReg(RegClass::Int),
                                       static_cast<int64_t>(I)));
  return BB;
}
} // namespace

TEST(TraceFormationTest, MergesJumpChain) {
  Function F("f");
  addWork(F, "a", 3, 7.0).append(Instruction::makeJump(1));
  addWork(F, "b", 2).append(Instruction::makeJump(2));
  addWork(F, "c", 4).append(Instruction::makeRet());

  TraceFormationResult R = formSuperblocks(F);
  EXPECT_EQ(R.BlocksMerged, 2u);
  ASSERT_EQ(R.Formed.numBlocks(), 1u);
  // 3 + 2 + 4 instructions plus the surviving ret; internal jumps gone.
  EXPECT_EQ(R.Formed.block(0).size(), 10u);
  EXPECT_TRUE(R.Formed.block(0).hasTerminator());
  EXPECT_DOUBLE_EQ(R.Formed.block(0).frequency(), 7.0);
  EXPECT_TRUE(verifyClean(verifyFunction(R.Formed)));
}

TEST(TraceFormationTest, MergesFallthroughChain) {
  Function F("f");
  addWork(F, "a", 3); // No terminator: falls through.
  addWork(F, "b", 2).append(Instruction::makeRet());
  TraceFormationResult R = formSuperblocks(F);
  EXPECT_EQ(R.BlocksMerged, 1u);
  ASSERT_EQ(R.Formed.numBlocks(), 1u);
  EXPECT_EQ(R.Formed.block(0).size(), 6u);
}

TEST(TraceFormationTest, MultiplePredecessorsBlockMerging) {
  // Two blocks jump to the same join: the join cannot be absorbed.
  Function F("f");
  addWork(F, "a", 2).append(Instruction::makeJump(2));
  addWork(F, "b", 2).append(Instruction::makeJump(2));
  addWork(F, "join", 3).append(Instruction::makeRet());
  TraceFormationResult R = formSuperblocks(F);
  EXPECT_EQ(R.BlocksMerged, 0u);
  EXPECT_EQ(R.Formed.numBlocks(), 3u);
}

TEST(TraceFormationTest, ConditionalBranchEndsChainAndRetargets) {
  // head (cond) -> tail via fallthrough; taken edge jumps to exit. The
  // exit is also reachable from tail, so nothing merges across it; but
  // tail -> exit is exit's second pred, so exit is not absorbed.
  Function F("f");
  BasicBlock &Head = addWork(F, "head", 2);
  Head.append(Instruction::makeBranch(Opcode::BranchNotZero, vi(0), 2));
  addWork(F, "tail", 2).append(Instruction::makeJump(2));
  addWork(F, "exit", 1).append(Instruction::makeRet());

  TraceFormationResult R = formSuperblocks(F);
  // tail has 1 pred (head fallthrough) but head's terminator is
  // conditional, so head has no *unconditional* successor: no merge of
  // head+tail; exit has 2 preds: no merge either.
  EXPECT_EQ(R.BlocksMerged, 0u);
  ASSERT_EQ(R.Formed.numBlocks(), 3u);
  // Branch targets survive the (identity) remap.
  const BasicBlock &H = R.Formed.block(0);
  EXPECT_EQ(H[H.size() - 1].imm(), 2);
}

TEST(TraceFormationTest, BranchTargetsRemappedAfterMerge) {
  // a -> b merge; c branches to c itself (loop) and exits via ret... use:
  // a jumps to b (merge), c jumps to a-chain head.
  Function F("f");
  addWork(F, "a", 2).append(Instruction::makeJump(1));
  addWork(F, "b", 2).append(Instruction::makeRet());
  BasicBlock &C = addWork(F, "c", 1, 3.0);
  C.append(Instruction::makeJump(0));

  TraceFormationResult R = formSuperblocks(F);
  EXPECT_EQ(R.BlocksMerged, 1u);
  ASSERT_EQ(R.Formed.numBlocks(), 2u);
  const BasicBlock &NewC = R.Formed.block(1);
  EXPECT_EQ(NewC.name(), "c");
  EXPECT_EQ(NewC[NewC.size() - 1].imm(), 0); // Still targets the a-chain.
}

TEST(TraceFormationTest, SelfLoopIsNotAbsorbed) {
  Function F("f");
  addWork(F, "loop", 2).append(Instruction::makeJump(0));
  TraceFormationResult R = formSuperblocks(F);
  EXPECT_EQ(R.BlocksMerged, 0u);
  ASSERT_EQ(R.Formed.numBlocks(), 1u);
  const BasicBlock &L = R.Formed.block(0);
  EXPECT_EQ(L[L.size() - 1].opcode(), Opcode::Jump);
}

TEST(TraceSplitTest, SplitThenFormRoundTrips) {
  Function F = buildBenchmark(Benchmark::FLO52Q);
  Function Split = splitIntoChains(F, 8);
  EXPECT_GT(Split.numBlocks(), F.numBlocks());
  EXPECT_TRUE(verifyClean(verifyFunction(Split)));

  TraceFormationResult R = formSuperblocks(Split);
  ASSERT_EQ(R.Formed.numBlocks(), F.numBlocks());
  // Chains collapse back to the original blocks (same schedulable code;
  // original blocks had no terminators, pieces added internal jumps that
  // formation strips again).
  for (unsigned B = 0; B != F.numBlocks(); ++B) {
    EXPECT_EQ(R.Formed.block(B).schedulableSize(),
              F.block(B).schedulableSize())
        << B;
    EXPECT_DOUBLE_EQ(R.Formed.block(B).frequency(), F.block(B).frequency());
  }
}

TEST(TraceSplitTest, PieceSizesRespectLimit) {
  Function F = buildBenchmark(Benchmark::MDG);
  Function Split = splitIntoChains(F, 10);
  for (const BasicBlock &BB : Split)
    EXPECT_LE(BB.schedulableSize(), 10u);
}

TEST(TraceSplitTest, SingleInstructionLimit) {
  Function F("f");
  addWork(F, "a", 3).append(Instruction::makeRet());
  Function Split = splitIntoChains(F, 1);
  EXPECT_EQ(Split.numBlocks(), 3u);
  TraceFormationResult R = formSuperblocks(Split);
  EXPECT_EQ(R.Formed.numBlocks(), 1u);
  EXPECT_EQ(R.Formed.block(0).schedulableSize(), 3u);
}

//===- tests/KnownLatencyTest.cpp - Known-latency extension tests ---------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "dag/DagBuilder.h"
#include "ir/IrBuilder.h"
#include "ir/IrPrinter.h"
#include "parser/Parser.h"
#include "sched/BalancedWeighter.h"
#include "sim/Simulator.h"
#include "workload/LineReuse.h"

#include <gtest/gtest.h>

using namespace bsched;

namespace {
Reg vi(unsigned Id) { return Reg::makeVirtual(RegClass::Int, Id); }
Reg vf(unsigned Id) { return Reg::makeVirtual(RegClass::Fp, Id); }
} // namespace

TEST(KnownLatencyTest, InstructionAttribute) {
  Instruction I = Instruction::makeLoad(Opcode::FLoad, vf(0), vi(0), 8, 0);
  EXPECT_FALSE(I.hasKnownLatency());
  I.setKnownLatency(2);
  EXPECT_TRUE(I.hasKnownLatency());
  EXPECT_EQ(I.knownLatency(), 2u);
  EXPECT_EQ(I.str(), "%f0 = fload [%i0 + 8] !0 @2");
}

TEST(KnownLatencyTest, ParserRoundTrip) {
  const char *Src = "func @f { block b {\n"
                    "%i0 = li 0\n"
                    "%f0 = fload [%i0 + 0] !a\n"
                    "%f1 = fload [%i0 + 8] !a @2\n"
                    "ret } }";
  ErrorOr<Function> F = parseSingleFunction(Src);
  ASSERT_TRUE(F.has_value()) << F.errorText();
  EXPECT_FALSE((*F).block(0)[1].hasKnownLatency());
  ASSERT_TRUE((*F).block(0)[2].hasKnownLatency());
  EXPECT_EQ((*F).block(0)[2].knownLatency(), 2u);

  // Printed form reparses identically.
  std::string Printed = printFunction(*F);
  ErrorOr<Function> F2 = parseSingleFunction(Printed);
  ASSERT_TRUE(F2.has_value()) << F2.errorText() << "\n" << Printed;
  EXPECT_EQ(printFunction(*F2), Printed);
}

TEST(KnownLatencyTest, ParserRejectsZeroLatency) {
  ParseResult R = parseIr("func @f { block b {\n%i0 = li 0\n"
                          "%f0 = fload [%i0 + 0] !a @0\nret } }");
  EXPECT_FALSE(R.ok());
}

TEST(KnownLatencyTest, SimulatorUsesKnownLatency) {
  // A known 2-cycle load under a 50-cycle memory system stalls only 1.
  BasicBlock BB("b");
  Instruction Load = Instruction::makeLoad(Opcode::Load, vi(1), vi(0), 0, 0);
  Load.setKnownLatency(2);
  BB.append(std::move(Load));
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(2), vi(1), 1));
  Rng R(1);
  BlockSimResult Res =
      simulateBlock(BB, ProcessorModel::unlimited(), FixedSystem(50), R);
  EXPECT_EQ(Res.Cycles, 3u);
  EXPECT_EQ(Res.InterlockCycles, 1u);
}

TEST(KnownLatencyTest, BalancedWeighterHonorsKnownLoads) {
  // Two independent loads plus fillers: the known one keeps its fixed
  // weight; the uncertain one absorbs all the parallelism.
  Function F("f");
  BasicBlock &BB = F.addBlock("b");
  IrBuilder B(F, BB);
  Reg Base = B.emitLoadImm(0);                   // 0
  Reg U = B.emitFLoad(Base, 0, 0);               // 1: uncertain
  Reg K = B.emitFLoad(Base, 8, 0);               // 2: known
  BB[2].setKnownLatency(2);
  B.emitBinary(Opcode::FAdd, U, K);              // 3: consumer
  B.emitFLoadImm(1.0);                           // 4: filler
  B.emitFLoadImm(2.0);                           // 5: filler

  DepDag Honor = buildDag(BB);
  BalancedWeighter(LatencyModel(), ChancesMethod::ExactLongestPath, 1.0,
                   /*HonorKnownLatency=*/true)
      .assignWeights(Honor);
  EXPECT_DOUBLE_EQ(Honor.weight(2), 2.0); // Fixed at the known latency.
  // The uncertain load alone soaks up the independent instructions.
  EXPECT_GT(Honor.weight(1), 2.5);

  DepDag Naive = buildDag(BB);
  BalancedWeighter(LatencyModel(), ChancesMethod::ExactLongestPath, 1.0,
                   /*HonorKnownLatency=*/false)
      .assignWeights(Naive);
  // Without the opt-out the known load is treated like any other.
  EXPECT_GT(Naive.weight(2), 2.0);
}

TEST(LineReuseTest, MarksSecondAccessToSameLine) {
  Function F("f");
  BasicBlock &BB = F.addBlock("b");
  IrBuilder B(F, BB);
  Reg Base = B.emitLoadImm(0);
  B.emitFLoad(Base, 0, 0);  // Line 0: first touch.
  B.emitFLoad(Base, 8, 0);  // Line 0 again: known hit.
  B.emitFLoad(Base, 32, 0); // Line 1: first touch.
  B.emitFLoad(Base, 40, 0); // Line 1 again: known hit.
  EXPECT_EQ(markKnownLineHits(BB, 32, 2), 2u);
  EXPECT_FALSE(BB[1].hasKnownLatency());
  EXPECT_TRUE(BB[2].hasKnownLatency());
  EXPECT_FALSE(BB[3].hasKnownLatency());
  EXPECT_TRUE(BB[4].hasKnownLatency());
}

TEST(LineReuseTest, BaseRedefinitionResetsKnowledge) {
  Function F("f");
  BasicBlock &BB = F.addBlock("b");
  IrBuilder B(F, BB);
  Reg Cur = B.emitLoadImm(0);
  B.emitFLoad(Cur, 0, 0);
  B.emitAdvance(Cur, 8);    // Same register, new value.
  B.emitFLoad(Cur, 0, 0);   // Could be a different line: not marked.
  EXPECT_EQ(markKnownLineHits(BB, 32, 2), 0u);
}

TEST(LineReuseTest, StoreEstablishesResidency) {
  Function F("f");
  BasicBlock &BB = F.addBlock("b");
  IrBuilder B(F, BB);
  Reg Base = B.emitLoadImm(0);
  Reg V = B.emitFLoadImm(1.0);
  B.emitStore(V, Base, 0, 0); // Brings the line in.
  B.emitFLoad(Base, 8, 0);    // Same line: known hit.
  EXPECT_EQ(markKnownLineHits(BB, 32, 2), 1u);
}

TEST(LineReuseTest, NegativeOffsetsFloorCorrectly) {
  Function F("f");
  BasicBlock &BB = F.addBlock("b");
  IrBuilder B(F, BB);
  Reg Base = B.emitLoadImm(64);
  B.emitFLoad(Base, -8, 0);  // Line -1.
  B.emitFLoad(Base, -16, 0); // Line -1 again: known hit.
  B.emitFLoad(Base, 0, 0);   // Line 0: first touch.
  EXPECT_EQ(markKnownLineHits(BB, 32, 2), 1u);
}

//===- tests/ParallelWeightingTest.cpp - Serial == parallel weighting -----=//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The block-parallel weighting contract (DESIGN.md §3h): a pipeline run
/// with Config.WeighterPool set produces a compiled function *bit-identical*
/// to the serial run — same instruction text, same statistics — because the
/// prepass results are folded back in block order. The suite runs under the
/// TSan preset, so it also exercises the weighter and scratch sharing
/// discipline (immutable weighter shared across workers, one scratch per
/// thread) under the race detector.
///
//===----------------------------------------------------------------------===//

#include "ir/IrPrinter.h"
#include "obs/Metrics.h"
#include "pipeline/Pipeline.h"
#include "sched/BalancedWeighter.h"
#include "sched/WeighterScratch.h"
#include "support/ThreadPool.h"
#include "workload/PerfectClub.h"

#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

using namespace bsched;

namespace {

/// A multi-block workload with real spill pressure (MDG is the paper's
/// highest-LLP program; unroll 2 keeps the test fast but multi-block).
Function testFunction(Benchmark B = Benchmark::MDG) {
  WorkloadOptions Options;
  Options.UnrollFactor = 2;
  return buildBenchmark(B, Options);
}

void expectIdenticalCompiles(const CompiledFunction &Serial,
                             const CompiledFunction &Parallel) {
  EXPECT_EQ(printFunction(Serial.Compiled), printFunction(Parallel.Compiled));
  EXPECT_EQ(Serial.SpillPerBlock, Parallel.SpillPerBlock);
  EXPECT_EQ(Serial.StaticInstructions, Parallel.StaticInstructions);
  EXPECT_EQ(Serial.StaticSpills, Parallel.StaticSpills);
  EXPECT_EQ(std::bit_cast<uint64_t>(Serial.DynamicInstructions),
            std::bit_cast<uint64_t>(Parallel.DynamicInstructions));
  EXPECT_EQ(std::bit_cast<uint64_t>(Serial.DynamicSpills),
            std::bit_cast<uint64_t>(Parallel.DynamicSpills));
}

} // namespace

TEST(ParallelWeightingTest, PipelineMatchesSerialAcrossPolicies) {
  ThreadPool Pool(4);
  for (Benchmark B : {Benchmark::MDG, Benchmark::TRACK}) {
    Function F = testFunction(B);
    ASSERT_GT(F.numBlocks(), 1u);
    for (SchedulerPolicy Policy :
         {SchedulerPolicy::Balanced, SchedulerPolicy::BalancedUnionFind,
          SchedulerPolicy::Traditional}) {
      PipelineConfig Serial;
      Serial.Policy = Policy;
      PipelineConfig Parallel = Serial;
      Parallel.WeighterPool = &Pool;

      ErrorOr<CompiledFunction> SerialOr = runPipeline(F, Serial);
      ErrorOr<CompiledFunction> ParallelOr = runPipeline(F, Parallel);
      ASSERT_TRUE(SerialOr.has_value());
      ASSERT_TRUE(ParallelOr.has_value());
      expectIdenticalCompiles(*SerialOr, *ParallelOr);
    }
  }
}

TEST(ParallelWeightingTest, OnDemandClosureMatchesMaterializedAcrossPool) {
  // The closure mode never changes results (DESIGN.md §3m): a parallel
  // on-demand run must be bit-identical to a serial materialized one.
  // Forcing the modes (threshold-independent) also routes the banded
  // closure through the worker threads, putting its per-scratch state
  // under the race detector.
  ThreadPool Pool(4);
  for (Benchmark B : {Benchmark::MDG, Benchmark::QCD2}) {
    Function F = testFunction(B);
    PipelineConfig Serial;
    Serial.Closure.Mode = ClosureMode::Materialized;
    PipelineConfig Parallel;
    Parallel.Closure.Mode = ClosureMode::OnDemand;
    Parallel.WeighterPool = &Pool;

    ErrorOr<CompiledFunction> SerialOr = runPipeline(F, Serial);
    ErrorOr<CompiledFunction> ParallelOr = runPipeline(F, Parallel);
    ASSERT_TRUE(SerialOr.has_value());
    ASSERT_TRUE(ParallelOr.has_value());
    expectIdenticalCompiles(*SerialOr, *ParallelOr);
  }
}

TEST(ParallelWeightingTest, PipelineMatchesSerialWithoutRegAlloc) {
  ThreadPool Pool(4);
  Function F = testFunction();
  PipelineConfig Serial = PipelineConfig::unlimitedRegisters();
  PipelineConfig Parallel = Serial;
  Parallel.WeighterPool = &Pool;

  ErrorOr<CompiledFunction> SerialOr = runPipeline(F, Serial);
  ErrorOr<CompiledFunction> ParallelOr = runPipeline(F, Parallel);
  ASSERT_TRUE(SerialOr.has_value());
  ASSERT_TRUE(ParallelOr.has_value());
  expectIdenticalCompiles(*SerialOr, *ParallelOr);
}

TEST(ParallelWeightingTest, OneWorkerPoolStaysSerialPath) {
  // A one-worker pool must behave exactly like no pool: the pipeline takes
  // the serial branch (workerCount() > 1 gate), so no prepass runs at all.
  ThreadPool Pool(1);
  Function F = testFunction();
  PipelineConfig Config;
  Config.WeighterPool = &Pool;
  PipelineConfig NoPool;

  ErrorOr<CompiledFunction> WithPool = runPipeline(F, Config);
  ErrorOr<CompiledFunction> Without = runPipeline(F, NoPool);
  ASSERT_TRUE(WithPool.has_value());
  ASSERT_TRUE(Without.has_value());
  expectIdenticalCompiles(*WithPool, *Without);
}

TEST(ParallelWeightingTest, SharedWeighterConcurrentScratchesAgree) {
  // Weighter-level contract: one immutable BalancedWeighter shared by many
  // workers, each with its own scratch, weighting disjoint DAGs of the
  // same function concurrently — every result matches the serial pass.
  Function F = testFunction();
  unsigned NumBlocks = F.numBlocks();
  BalancedWeighter W;

  std::vector<std::vector<double>> SerialWeights(NumBlocks);
  {
    WeighterScratch Scratch;
    for (unsigned BI = 0; BI != NumBlocks; ++BI) {
      DepDag Dag = buildDag(F.block(BI), DagBuildOptions());
      W.assignWeights(Dag, Scratch);
      for (unsigned I = 0; I != Dag.size(); ++I)
        SerialWeights[BI].push_back(Dag.weight(I));
    }
  }

  std::vector<std::vector<double>> ParallelWeights(NumBlocks);
  ThreadPool Pool(4);
  parallelForEach(Pool, NumBlocks, [&](size_t BI) {
    thread_local WeighterScratch Scratch;
    DepDag Dag =
        buildDag(F.block(static_cast<unsigned>(BI)), DagBuildOptions());
    W.assignWeights(Dag, Scratch);
    for (unsigned I = 0; I != Dag.size(); ++I)
      ParallelWeights[BI].push_back(Dag.weight(I));
  });

  for (unsigned BI = 0; BI != NumBlocks; ++BI) {
    ASSERT_EQ(SerialWeights[BI].size(), ParallelWeights[BI].size());
    for (unsigned I = 0; I != SerialWeights[BI].size(); ++I)
      EXPECT_EQ(std::bit_cast<uint64_t>(SerialWeights[BI][I]),
                std::bit_cast<uint64_t>(ParallelWeights[BI][I]))
          << "block " << BI << " node " << I;
  }
}

TEST(ParallelWeightingTest, ParallelRunRecordsPrepassMetrics) {
  MetricRegistry Registry;
  ThreadPool Pool(4);
  Function F = testFunction();
  PipelineConfig Config;
  Config.WeighterPool = &Pool;
  Config.Obs.Metrics = &Registry;

  ASSERT_TRUE(runPipeline(F, Config).has_value());
#ifndef BSCHED_NO_OBS
  MetricSnapshot Snap = Registry.snapshot();
  // Every block goes through the prepass exactly once...
  EXPECT_EQ(Snap.Counters["bsched.sched.weighter_parallel_blocks"],
            F.numBlocks());
  // ...and is weighted twice in total (prepass + post-RA second pass).
  EXPECT_EQ(Snap.Counters["bsched.sched.weighter_blocks"],
            2u * F.numBlocks());
#endif
}

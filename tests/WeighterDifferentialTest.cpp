//===- tests/WeighterDifferentialTest.cpp - Kernel vs. reference oracle ---=//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized differential tests for the allocation-free balanced-weighting
/// kernel: over thousands of random DAGs — both Chances methods, known
/// latencies honoured and ignored — the optimized scratch-driven kernel
/// must produce weights *bit-identical* to the retained allocating
/// reference implementation (BalancedWeighter::assignWeightsReference).
/// Bit-identity, not epsilon-closeness: the kernel adds the same shares in
/// the same order, so any drift means the analyses diverged. One scratch is
/// reused across every DAG and configuration, which is exactly the
/// pipeline's reuse pattern. The Pred-matrix-free closure mode is checked
/// against the dense one on the same DAGs.
///
//===----------------------------------------------------------------------===//

#include "dag/DagBuilder.h"
#include "dag/DepDag.h"
#include "dag/Reachability.h"
#include "ir/BasicBlock.h"
#include "sched/BalancedWeighter.h"
#include "sched/ListScheduler.h"
#include "sched/WeighterScratch.h"
#include "support/Rng.h"
#include "workload/HugeBlocks.h"

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

using namespace bsched;

namespace {

/// Shape of one random test DAG: which nodes are loads, which loads carry
/// a statically known latency, and the forward edge list. A DepDag can be
/// instantiated from it repeatedly so the optimized and reference kernels
/// each get a fresh, identical graph.
struct RandomDagSpec {
  std::vector<bool> IsLoad;
  std::vector<unsigned> KnownLatency; ///< 0 = unknown; else cycles.
  std::vector<std::pair<unsigned, unsigned>> Edges;

  DepDag instantiate() const {
    BasicBlock BB("random");
    for (unsigned I = 0; I != IsLoad.size(); ++I) {
      Reg Dst = Reg::makeVirtual(RegClass::Int, I);
      if (IsLoad[I]) {
        Reg Base = Reg::makeVirtual(RegClass::Int, 1000 + I);
        Instruction Load = Instruction::makeLoad(
            Opcode::Load, Dst, Base, 0, static_cast<AliasClassId>(I));
        if (KnownLatency[I] != 0)
          Load.setKnownLatency(KnownLatency[I]);
        BB.append(std::move(Load));
      } else {
        Reg Src = Reg::makeVirtual(RegClass::Int, 2000 + I);
        BB.append(Instruction::makeBinaryImm(Opcode::AddI, Dst, Src,
                                             static_cast<int64_t>(I)));
      }
    }
    DepDag Dag(BB);
    for (auto [From, To] : Edges)
      Dag.addEdge(From, To, DepKind::Data);
    return Dag;
  }
};

/// Draws a random DAG of exactly \p N nodes: ~40% loads (~30% of those
/// with a known latency), and forward edges with a density drawn per graph
/// so the suite covers everything from edge-free (all nodes mutually
/// independent) to near-chains (few independent nodes).
RandomDagSpec randomSpecOfSize(Rng &R, unsigned N) {
  RandomDagSpec Spec;
  Spec.IsLoad.resize(N);
  Spec.KnownLatency.assign(N, 0);
  for (unsigned I = 0; I != N; ++I) {
    Spec.IsLoad[I] = R.nextBernoulli(0.4);
    if (Spec.IsLoad[I] && R.nextBernoulli(0.3))
      Spec.KnownLatency[I] = 2 + static_cast<unsigned>(R.nextBounded(19));
  }
  double Density = R.nextDouble() * 0.5;
  for (unsigned From = 0; From + 1 < N; ++From)
    for (unsigned To = From + 1; To != N; ++To)
      if (R.nextBernoulli(Density / (1.0 + 0.1 * (To - From))))
        Spec.Edges.push_back({From, To});
  return Spec;
}

/// The original 1-48 node draw used by the randomized suites.
RandomDagSpec randomSpec(Rng &R) {
  return randomSpecOfSize(R, 1 + static_cast<unsigned>(R.nextBounded(48)));
}

/// Exact double comparison through the bit pattern, so the failure message
/// shows which bits drifted (EXPECT_EQ on doubles would also be exact, but
/// 0.0 == -0.0 would pass — bit-identity must not).
void expectBitIdentical(const DepDag &Got, const DepDag &Want,
                        unsigned Node) {
  EXPECT_EQ(std::bit_cast<uint64_t>(Got.weight(Node)),
            std::bit_cast<uint64_t>(Want.weight(Node)))
      << "weight mismatch at node " << Node << ": optimized "
      << Got.weight(Node) << " vs reference " << Want.weight(Node);
}

struct KernelConfig {
  ChancesMethod Method;
  bool HonorKnown;
};

constexpr KernelConfig Configs[] = {
    {ChancesMethod::ExactLongestPath, true},
    {ChancesMethod::ExactLongestPath, false},
    {ChancesMethod::UnionFindLevels, true},
    {ChancesMethod::UnionFindLevels, false},
};

TEST(WeighterDifferential, RandomDagsBitIdenticalToReference) {
  Rng R(0xD1FFE2E7);
  WeighterScratch Scratch; // One scratch across all DAGs and configs.
  constexpr unsigned NumDags = 1200;
  for (unsigned Trial = 0; Trial != NumDags; ++Trial) {
    RandomDagSpec Spec = randomSpec(R);
    for (const KernelConfig &Config : Configs) {
      BalancedWeighter W(LatencyModel(), Config.Method, 1.0,
                         Config.HonorKnown);
      DepDag Optimized = Spec.instantiate();
      DepDag Reference = Spec.instantiate();
      W.assignWeights(Optimized, Scratch);
      W.assignWeightsReference(Reference);
      ASSERT_EQ(Optimized.size(), Reference.size());
      for (unsigned I = 0; I != Optimized.size(); ++I)
        expectBitIdentical(Optimized, Reference, I);
      if (HasFailure())
        return; // One diverging DAG is enough diagnosis.
    }
  }
  EXPECT_EQ(Scratch.uses(), uint64_t{NumDags} * std::size(Configs));
}

TEST(WeighterDifferential, SuperscalarWidthsMatchReference) {
  Rng R(0x5CA1E5);
  WeighterScratch Scratch;
  for (unsigned Trial = 0; Trial != 200; ++Trial) {
    RandomDagSpec Spec = randomSpec(R);
    for (double Width : {2.0, 4.0}) {
      for (const KernelConfig &Config : Configs) {
        BalancedWeighter W(LatencyModel(), Config.Method, Width,
                           Config.HonorKnown);
        DepDag Optimized = Spec.instantiate();
        DepDag Reference = Spec.instantiate();
        W.assignWeights(Optimized, Scratch);
        W.assignWeightsReference(Reference);
        for (unsigned I = 0; I != Optimized.size(); ++I)
          expectBitIdentical(Optimized, Reference, I);
        if (HasFailure())
          return;
      }
    }
  }
}

TEST(WeighterDifferential, BreakdownWeightsMatchReference) {
  Rng R(0xB4EAD0);
  for (unsigned Trial = 0; Trial != 300; ++Trial) {
    RandomDagSpec Spec = randomSpec(R);
    for (const KernelConfig &Config : Configs) {
      BalancedWeighter W(LatencyModel(), Config.Method, 1.0,
                         Config.HonorKnown);
      DepDag ForBreakdown = Spec.instantiate();
      DepDag Reference = Spec.instantiate();
      BalancedWeighter::Breakdown Breakdown =
          W.computeBreakdown(ForBreakdown);
      W.assignWeightsReference(Reference);

      ASSERT_EQ(Breakdown.Weights.size(), Reference.size());
      for (unsigned I = 0; I != Reference.size(); ++I) {
        EXPECT_EQ(std::bit_cast<uint64_t>(Breakdown.Weights[I]),
                  std::bit_cast<uint64_t>(Reference.weight(I)));
        // computeBreakdown also writes the weights into its DAG.
        expectBitIdentical(ForBreakdown, Reference, I);
      }
      if (HasFailure())
        return;
    }
  }
}

TEST(WeighterDifferential, ClosureWithoutPredMatrixIsEquivalent) {
  Rng R(0xC105E);
  TransitiveClosure Dense, Lean; // Reused across DAGs like the scratch.
  BitVector DenseInd, LeanInd;
  for (unsigned Trial = 0; Trial != 400; ++Trial) {
    DepDag Dag = randomSpec(R).instantiate();
    Dense.compute(Dag, /*StorePreds=*/true);
    Lean.compute(Dag, /*StorePreds=*/false);
    ASSERT_TRUE(Dense.storesPreds());
    ASSERT_FALSE(Lean.storesPreds());
    for (unsigned I = 0; I != Dag.size(); ++I) {
      Dense.independentOf(I, DenseInd);
      Lean.independentOf(I, LeanInd);
      ASSERT_EQ(DenseInd, LeanInd) << "G_ind mismatch at node " << I;
      ASSERT_EQ(Dense.predsOf(I), Lean.predsOf(I))
          << "Pred* mismatch at node " << I;
      ASSERT_EQ(Dense.succsOf(I), Lean.succsOf(I))
          << "Succ* mismatch at node " << I;
    }
  }
}

/// The three closure implementations — the materialized row sweep, the
/// blocked/tiled kernel, and the matrix-free banded on-demand form — must
/// agree bit-for-bit on every independence set. Sizes straddle the 64-bit
/// word boundaries where the block/band edge cases live (partial last
/// word, exactly full words, one node past a full word).
TEST(WeighterDifferential, ClosureKernelsAgreeAtWordBoundaries) {
  Rng R(0xB10CC);
  TransitiveClosure Rows, Blocked;
  BandedClosure Bands;
  BitVector RowsInd, BlockedInd, BandInd;
  for (unsigned N : {1u, 2u, 63u, 64u, 65u, 127u, 128u, 130u, 257u}) {
    for (unsigned Trial = 0; Trial != 6; ++Trial) {
      DepDag Dag = randomSpecOfSize(R, N).instantiate();
      Rows.compute(Dag, /*StorePreds=*/true, ClosureKernel::Rows);
      Blocked.compute(Dag, /*StorePreds=*/true, ClosureKernel::Blocked);
      Bands.attach(Dag);
      ASSERT_EQ(Bands.size(), N);
      // Ascending then descending, so the band cache both streams forward
      // and is forced to rebuild on every backward 64-crossing.
      for (unsigned Pass = 0; Pass != 2; ++Pass) {
        for (unsigned Step = 0; Step != N; ++Step) {
          unsigned I = Pass == 0 ? Step : N - 1 - Step;
          Rows.independentOf(I, RowsInd);
          Blocked.independentOf(I, BlockedInd);
          Bands.independentOf(I, BandInd);
          ASSERT_EQ(RowsInd, BlockedInd)
              << "blocked-kernel G_ind mismatch at node " << I << " of " << N;
          ASSERT_EQ(RowsInd, BandInd)
              << "banded G_ind mismatch at node " << I << " of " << N;
          ASSERT_EQ(Blocked.succsOf(I), Rows.succsOf(I));
          ASSERT_EQ(Blocked.predsOf(I), Rows.predsOf(I));
        }
      }
    }
  }
}

/// The huge-DAG oracle (ISSUE 10 acceptance): on real builder-produced
/// DAGs at n ∈ {64, 512, 4096}, every closure mode must reproduce the
/// allocating reference's weights bit-for-bit, for both Chances methods —
/// and since schedules are a pure function of weights, the schedules must
/// match across modes too (checked directly at n=512).
TEST(WeighterDifferential, HugeBlocksBitIdenticalAcrossClosureModes) {
  WeighterScratch Scratch;
  for (unsigned Size : {64u, 512u, 4096u}) {
    Function F = buildHugeBlock(Size);
    for (ChancesMethod Method :
         {ChancesMethod::ExactLongestPath, ChancesMethod::UnionFindLevels}) {
      DepDag Reference = buildDag(F.block(0));
      BalancedWeighter RefW(LatencyModel(), Method, 1.0, true);
      RefW.assignWeightsReference(Reference);

      std::vector<unsigned> FirstOrder;
      for (ClosureMode Mode : {ClosureMode::Materialized, ClosureMode::Blocked,
                               ClosureMode::OnDemand}) {
        ClosureOptions Closure;
        Closure.Mode = Mode;
        BalancedWeighter W(LatencyModel(), Method, 1.0, true, Closure);
        DepDag Dag = buildDag(F.block(0));
        W.assignWeights(Dag, Scratch);
        ASSERT_EQ(Dag.size(), Size);
        for (unsigned I = 0; I != Dag.size(); ++I)
          expectBitIdentical(Dag, Reference, I);
        if (HasFailure())
          return;
        if (Size == 512) {
          Schedule S = scheduleDag(Dag);
          if (FirstOrder.empty())
            FirstOrder = S.Order;
          else
            EXPECT_EQ(S.Order, FirstOrder)
                << "schedule drift across closure modes";
        }
      }
    }
  }
}

/// The scratch entry point and the plain entry point must agree (the plain
/// one is a thin wrapper, but the wrapper is what non-pipeline callers
/// use).
TEST(WeighterDifferential, ScratchAndPlainEntryPointsAgree) {
  Rng R(0xE27);
  WeighterScratch Scratch;
  for (unsigned Trial = 0; Trial != 100; ++Trial) {
    RandomDagSpec Spec = randomSpec(R);
    BalancedWeighter W;
    DepDag ViaScratch = Spec.instantiate();
    DepDag Plain = Spec.instantiate();
    W.assignWeights(ViaScratch, Scratch);
    W.assignWeights(Plain);
    for (unsigned I = 0; I != Plain.size(); ++I)
      expectBitIdentical(ViaScratch, Plain, I);
    if (HasFailure())
      return;
  }
}

} // namespace

//===- tests/RenamingTest.cpp - Unit tests for post-RA renaming -----------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "dag/DagBuilder.h"
#include "ir/Interpreter.h"
#include "ir/IrBuilder.h"
#include "regalloc/LocalRegAlloc.h"
#include "regalloc/RegisterRenaming.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace bsched;

namespace {

Reg pi(unsigned Id) { return Reg::makePhysical(RegClass::Int, Id); }

/// Counts Anti + Output edges in the block's dependence DAG.
unsigned falseDependences(const BasicBlock &BB) {
  DepDag Dag = buildDag(BB);
  unsigned Count = 0;
  for (unsigned I = 0; I != Dag.size(); ++I)
    for (const DepEdge &E : Dag.succs(I))
      Count += E.Kind == DepKind::Anti || E.Kind == DepKind::Output;
  return Count;
}

/// Random virtual-register program, allocated down to physical registers.
BasicBlock makeAllocatedBlock(uint64_t Seed, const TargetDescription &T) {
  Rng R(Seed);
  Function F("rand");
  BasicBlock &BB = F.addBlock("b");
  IrBuilder B(F, BB);
  std::vector<Reg> Ints{B.emitLoadImm(64)};
  std::vector<Reg> Fps{B.emitFLoadImm(0.5)};
  auto PickInt = [&] { return Ints[R.nextBounded(Ints.size())]; };
  auto PickFp = [&] { return Fps[R.nextBounded(Fps.size())]; };
  for (unsigned I = 0; I != 50; ++I) {
    switch (R.nextBounded(5)) {
    case 0:
      Fps.push_back(B.emitFLoad(PickInt(), 8 * R.nextBounded(8), 0));
      break;
    case 1:
      B.emitStore(PickFp(), PickInt(), 8 * R.nextBounded(8), 1);
      break;
    case 2:
      Ints.push_back(B.emitBinaryImm(Opcode::AddI, PickInt(),
                                     R.nextBounded(64)));
      break;
    default:
      Fps.push_back(B.emitBinary(Opcode::FMul, PickFp(), PickFp()));
      break;
    }
  }
  Reg Out = B.emitLoadImm(4096);
  B.emitStore(Fps.back(), Out, 0, 1);
  allocateRegisters(F, BB, T);
  return BB;
}

} // namespace

TEST(RenamingTest, BreaksWawChain) {
  // Three independent computations forced into one register by a naive
  // allocation; renaming gives each its own register.
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(pi(0), 1));
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, pi(1), pi(0), 1));
  BB.append(Instruction::makeLoadImm(pi(0), 2));
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, pi(2), pi(0), 1));
  BB.append(Instruction::makeLoadImm(pi(0), 3));
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, pi(3), pi(0), 1));

  unsigned Before = falseDependences(BB);
  ASSERT_GT(Before, 0u);
  RenamingResult Res = renameRegisters(BB);
  EXPECT_GT(Res.DefsRenamed, 0u);
  EXPECT_LT(falseDependences(BB), Before);
}

TEST(RenamingTest, PreservesValuesThroughRenames) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(pi(0), 5));
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, pi(0), pi(0), 2));
  BB.append(Instruction::makeLoadImm(pi(1), 100));
  BB.append(Instruction::makeStore(Opcode::Store, pi(0), pi(1), 0, 0));

  BasicBlock Original = BB;
  renameRegisters(BB);
  Interpreter Before, After;
  Before.run(Original);
  After.run(BB);
  EXPECT_EQ(Before.memoryImage(), After.memoryImage());
}

TEST(RenamingTest, LiveInsKeepTheirNames) {
  // pi(5) is read before any def: callers seeded it there.
  BasicBlock BB("b");
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, pi(0), pi(5), 1));
  BB.append(Instruction::makeStore(Opcode::Store, pi(0), pi(5), 0, 0));
  renameRegisters(BB);
  EXPECT_EQ(BB[0].source(0), pi(5));
  EXPECT_EQ(BB[1].source(1), pi(5));
}

TEST(RenamingTest, FramePointerNeverRenamed) {
  TargetDescription T;
  Reg FP = T.framePointer();
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(pi(0), 7));
  BB.append(Instruction::makeStore(Opcode::Store, pi(0), FP, 0, 0));
  BB.append(Instruction::makeLoad(Opcode::Load, pi(1), FP, 0, 0));
  renameRegisters(BB, T);
  EXPECT_EQ(BB[1].addressBase(), FP);
  EXPECT_EQ(BB[2].addressBase(), FP);
}

TEST(RenamingTest, DeadDefDoesNotLeakRegisters) {
  // A def with no uses releases its register immediately; repeated dead
  // defs must not exhaust the pool.
  BasicBlock BB("b");
  for (int I = 0; I != 64; ++I)
    BB.append(Instruction::makeLoadImm(pi(0), I));
  RenamingResult Res = renameRegisters(BB);
  EXPECT_EQ(Res.DefsRenamed + Res.DefsRetained, 64u);
}

class RenamingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RenamingPropertyTest, SemanticsPreservedOnAllocatedCode) {
  TargetDescription T;
  BasicBlock BB = makeAllocatedBlock(GetParam(), T);
  BasicBlock Original = BB;
  renameRegisters(BB, T);

  Interpreter Before, After;
  Before.run(Original);
  After.run(BB);
  EXPECT_EQ(Before.memoryImage(), After.memoryImage());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, RenamingPropertyTest,
                         ::testing::Values(3, 7, 19, 37, 53, 71, 97, 113));

TEST(RenamingTest, ReducesFalseDependencesInAggregate) {
  // Round-robin renaming is greedy: an individual block can occasionally
  // trade one false dependence for another, but across a population of
  // allocated blocks the count must drop substantially.
  TargetDescription T;
  unsigned Before = 0, After = 0;
  for (uint64_t Seed : {3, 7, 19, 37, 53, 71, 97, 113}) {
    BasicBlock BB = makeAllocatedBlock(Seed ^ 0xABCD, T);
    Before += falseDependences(BB);
    renameRegisters(BB, T);
    After += falseDependences(BB);
  }
  EXPECT_LT(After, Before);
  EXPECT_LT(After, Before * 3 / 4); // At least a 25% aggregate reduction.
}

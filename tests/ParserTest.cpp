//===- tests/ParserTest.cpp - Unit tests for the .bsir parser -------------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "ir/IrPrinter.h"
#include "parser/Lexer.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace bsched;

//===----------------------------------------------------------------------===
// Lexer
//===----------------------------------------------------------------------===

TEST(LexerTest, Punctuation) {
  Lexer L("{ } [ ] = , + - ! @");
  EXPECT_EQ(L.next().Kind, TokenKind::LBrace);
  EXPECT_EQ(L.next().Kind, TokenKind::RBrace);
  EXPECT_EQ(L.next().Kind, TokenKind::LBracket);
  EXPECT_EQ(L.next().Kind, TokenKind::RBracket);
  EXPECT_EQ(L.next().Kind, TokenKind::Equals);
  EXPECT_EQ(L.next().Kind, TokenKind::Comma);
  EXPECT_EQ(L.next().Kind, TokenKind::Plus);
  EXPECT_EQ(L.next().Kind, TokenKind::Minus);
  EXPECT_EQ(L.next().Kind, TokenKind::Bang);
  EXPECT_EQ(L.next().Kind, TokenKind::At);
  EXPECT_EQ(L.next().Kind, TokenKind::Eof);
}

TEST(LexerTest, Identifiers) {
  Lexer L("func fadd loop_1 a.b");
  Token T = L.next();
  EXPECT_EQ(T.Kind, TokenKind::Ident);
  EXPECT_EQ(T.Text, "func");
  EXPECT_EQ(L.next().Text, "fadd");
  EXPECT_EQ(L.next().Text, "loop_1");
  EXPECT_EQ(L.next().Text, "a.b");
}

TEST(LexerTest, Numbers) {
  Lexer L("42 3.5 2e3 1.5e-2 7");
  Token T = L.next();
  EXPECT_EQ(T.Kind, TokenKind::Int);
  EXPECT_EQ(T.IntValue, 42u);
  T = L.next();
  EXPECT_EQ(T.Kind, TokenKind::Float);
  EXPECT_DOUBLE_EQ(T.FloatValue, 3.5);
  T = L.next();
  EXPECT_EQ(T.Kind, TokenKind::Float);
  EXPECT_DOUBLE_EQ(T.FloatValue, 2000.0);
  T = L.next();
  EXPECT_EQ(T.Kind, TokenKind::Float);
  EXPECT_DOUBLE_EQ(T.FloatValue, 0.015);
  T = L.next();
  EXPECT_EQ(T.Kind, TokenKind::Int);
  EXPECT_EQ(T.IntValue, 7u);
}

TEST(LexerTest, Registers) {
  Lexer L("%i0 %f12 $i3 $f1");
  Token T = L.next();
  EXPECT_EQ(T.Kind, TokenKind::RegTok);
  EXPECT_EQ(T.RegValue, Reg::makeVirtual(RegClass::Int, 0));
  EXPECT_EQ(L.next().RegValue, Reg::makeVirtual(RegClass::Fp, 12));
  EXPECT_EQ(L.next().RegValue, Reg::makePhysical(RegClass::Int, 3));
  EXPECT_EQ(L.next().RegValue, Reg::makePhysical(RegClass::Fp, 1));
}

TEST(LexerTest, CommentsSkipped) {
  Lexer L("a # comment to end\nb // other comment\nc");
  EXPECT_EQ(L.next().Text, "a");
  EXPECT_EQ(L.next().Text, "b");
  EXPECT_EQ(L.next().Text, "c");
  EXPECT_EQ(L.next().Kind, TokenKind::Eof);
}

TEST(LexerTest, LineAndColumnTracking) {
  Lexer L("a\n  bb");
  Token A = L.next();
  EXPECT_EQ(A.Line, 1u);
  EXPECT_EQ(A.Col, 1u);
  Token B = L.next();
  EXPECT_EQ(B.Line, 2u);
  EXPECT_EQ(B.Col, 3u);
}

TEST(LexerTest, MalformedRegisterIsError) {
  Lexer L("%x1");
  EXPECT_EQ(L.next().Kind, TokenKind::Error);
}

//===----------------------------------------------------------------------===
// Parser: valid inputs
//===----------------------------------------------------------------------===

namespace {

const char *SampleKernel = R"(
# A small kernel exercising every operand shape.
func @saxpy {
block entry freq 100 {
  %i0 = li 1000
  %i1 = addi %i0, 8
  %f0 = fload [%i0 + 0] !x
  %f1 = fload [%i1 + 0] !y
  %f2 = fli 2.5
  %f3 = fmadd %f2, %f0, %f1
  fstore %f3, [%i1 + 0] !y
  ret
}
}
)";

} // namespace

TEST(ParserTest, ParsesSampleKernel) {
  ParseResult R = parseIr(SampleKernel);
  ASSERT_TRUE(R.ok()) << (R.Diags.empty() ? "" : R.Diags[0].str());
  ASSERT_EQ(R.Functions.size(), 1u);
  const Function &F = R.Functions[0];
  EXPECT_EQ(F.name(), "saxpy");
  ASSERT_EQ(F.numBlocks(), 1u);
  EXPECT_EQ(F.block(0).size(), 8u);
  EXPECT_DOUBLE_EQ(F.block(0).frequency(), 100.0);
  EXPECT_EQ(F.numAliasClasses(), 2u);
}

TEST(ParserTest, AliasClassesInterned) {
  ErrorOr<Function> F = parseSingleFunction(SampleKernel);
  ASSERT_TRUE(F.has_value());
  // !x -> 0, !y -> 1 in first-appearance order.
  EXPECT_EQ((*F).block(0)[2].aliasClass(), 0);
  EXPECT_EQ((*F).block(0)[3].aliasClass(), 1);
  EXPECT_EQ((*F).block(0)[6].aliasClass(), 1);
}

TEST(ParserTest, NumericAliasClasses) {
  const char *Src = "func @f { block b { %i0 = li 0\n"
                    "%i1 = load [%i0 + 0] !7\nret } }";
  ErrorOr<Function> F = parseSingleFunction(Src);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ((*F).block(0)[1].aliasClass(), 7);
}

TEST(ParserTest, NegativeOffsetsAndImmediates) {
  const char *Src = "func @f { block b {\n"
                    "%i0 = li -5\n"
                    "%i1 = addi %i0, -3\n"
                    "%f0 = fli -2.5\n"
                    "%i2 = load [%i0 - 16] !m\n"
                    "ret } }";
  ErrorOr<Function> F = parseSingleFunction(Src);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ((*F).block(0)[0].imm(), -5);
  EXPECT_EQ((*F).block(0)[1].imm(), -3);
  EXPECT_DOUBLE_EQ((*F).block(0)[2].fpImm(), -2.5);
  EXPECT_EQ((*F).block(0)[3].imm(), -16);
}

TEST(ParserTest, BranchTargetsByName) {
  const char *Src = R"(
func @f {
block head {
  %i0 = li 0
  bz %i0, @exit
}
block body {
  jump @head
}
block exit {
  ret
}
}
)";
  ErrorOr<Function> F = parseSingleFunction(Src);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ((*F).block(0)[1].imm(), 2); // @exit
  EXPECT_EQ((*F).block(1)[0].imm(), 0); // @head
}

TEST(ParserTest, BranchTargetsByIndex) {
  const char *Src = "func @f { block a { jump 1 } block b { ret } }";
  ErrorOr<Function> F = parseSingleFunction(Src);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ((*F).block(0)[0].imm(), 1);
}

TEST(ParserTest, MultipleFunctions) {
  const char *Src = "func @a { block x { ret } } func @b { block y { ret } }";
  ParseResult R = parseIr(Src);
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R.Functions.size(), 2u);
  EXPECT_EQ(R.Functions[0].name(), "a");
  EXPECT_EQ(R.Functions[1].name(), "b");
}

TEST(ParserTest, ExplicitRegistersReserveCounters) {
  const char *Src = "func @f { block b { %i9 = li 1\nret } }";
  ErrorOr<Function> F = parseSingleFunction(Src);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->makeVirtualReg(RegClass::Int).id(), 10u);
}

TEST(ParserTest, PhysicalRegistersAccepted) {
  const char *Src = "func @f { block b { $i0 = li 1\n$i1 = mov $i0\nret } }";
  ErrorOr<Function> F = parseSingleFunction(Src);
  ASSERT_TRUE(F.has_value());
  EXPECT_TRUE((*F).block(0)[0].dest().isPhysical());
}

TEST(ParserTest, PrintParseRoundTrip) {
  ErrorOr<Function> F = parseSingleFunction(SampleKernel);
  ASSERT_TRUE(F.has_value());
  std::string Printed = printFunction(*F);
  ErrorOr<Function> F2 = parseSingleFunction(Printed);
  ASSERT_TRUE(F2.has_value()) << F2.errorText() << "\n" << Printed;
  EXPECT_EQ(printFunction(*F2), Printed);
}

//===----------------------------------------------------------------------===
// Parser: diagnostics
//===----------------------------------------------------------------------===

TEST(ParserDiagTest, UnknownMnemonic) {
  ParseResult R = parseIr("func @f { block b { %i0 = frobnicate %i1 } }");
  EXPECT_FALSE(R.ok());
  ASSERT_FALSE(R.Diags.empty());
  EXPECT_NE(R.Diags[0].Message.find("unknown mnemonic"), std::string::npos);
}

TEST(ParserDiagTest, WrongRegisterClass) {
  ParseResult R = parseIr("func @f { block b { %i0 = fadd %f0, %f1\nret } }");
  EXPECT_FALSE(R.ok());
}

TEST(ParserDiagTest, WrongSourceClass) {
  ParseResult R = parseIr("func @f { block b { %f0 = fadd %i0, %f1\nret } }");
  EXPECT_FALSE(R.ok());
}

TEST(ParserDiagTest, MissingDestination) {
  ParseResult R = parseIr("func @f { block b { add %i0, %i1\nret } }");
  EXPECT_FALSE(R.ok());
}

TEST(ParserDiagTest, UnexpectedDestination) {
  ParseResult R = parseIr("func @f { block b { %i0 = ret } }");
  EXPECT_FALSE(R.ok());
}

TEST(ParserDiagTest, UnknownBranchTarget) {
  ParseResult R = parseIr("func @f { block b { jump @nowhere } }");
  EXPECT_FALSE(R.ok());
  ASSERT_FALSE(R.Diags.empty());
  bool Found = false;
  for (const ParseDiag &D : R.Diags)
    Found |= D.Message.find("unknown branch target") != std::string::npos;
  EXPECT_TRUE(Found);
}

TEST(ParserDiagTest, MissingAliasClass) {
  ParseResult R =
      parseIr("func @f { block b { %i1 = load [%i0 + 0]\nret } }");
  EXPECT_FALSE(R.ok());
}

TEST(ParserDiagTest, DiagnosticCarriesLocation) {
  ParseResult R = parseIr("func @f { block b {\n  %i0 = bogus\n} }");
  ASSERT_FALSE(R.Diags.empty());
  EXPECT_EQ(R.Diags[0].Line, 2u);
  EXPECT_NE(R.Diags[0].str().find("line 2"), std::string::npos);
}

TEST(ParserDiagTest, EmptyInputYieldsNoFunctions) {
  ParseResult R = parseIr("");
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.Functions.empty());
}

TEST(ParserDiagTest, SingleFunctionHelperRejectsTwo) {
  ErrorOr<Function> F = parseSingleFunction(
      "func @a { block x { ret } } func @b { block y { ret } }");
  EXPECT_FALSE(F.has_value());
  ASSERT_FALSE(F.errors().empty());
  EXPECT_EQ(F.errors()[0].Code, DiagCode::ParseNotSingleFunction);
  EXPECT_FALSE(F.errorText().empty());
}

TEST(ParserDiagTest, RecoversAndParsesNextBlock) {
  const char *Src = R"(
func @f {
block bad {
  %i0 = frobnicate
}
block good {
  ret
}
}
)";
  ParseResult R = parseIr(Src);
  EXPECT_FALSE(R.ok());
  // Despite the error, the parser recovered and saw both blocks.
  ASSERT_EQ(R.Functions.size(), 1u);
  EXPECT_EQ(R.Functions[0].numBlocks(), 2u);
}

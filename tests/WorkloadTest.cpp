//===- tests/WorkloadTest.cpp - Unit tests for workload generators --------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "dag/DagBuilder.h"
#include "dag/DagUtils.h"
#include "ir/IrPrinter.h"
#include "ir/IrVerifier.h"
#include "workload/HugeBlocks.h"
#include "workload/KernelGen.h"
#include "workload/PerfectClub.h"

#include <gtest/gtest.h>

using namespace bsched;

namespace {

/// Fraction of instructions in \p F that are loads.
double loadFraction(const Function &F) {
  unsigned Loads = 0, Total = 0;
  for (const BasicBlock &BB : F)
    for (const Instruction &I : BB) {
      Total += 1;
      Loads += I.isLoad();
    }
  return Total == 0 ? 0.0 : static_cast<double>(Loads) / Total;
}

Function buildKernel(void (*Emit)(KernelContext &), bool Fortran = true) {
  Function F("k");
  BasicBlock &BB = F.addBlock("b");
  KernelContext Ctx(F, BB, Fortran, 1);
  Emit(Ctx);
  return F;
}

} // namespace

//===----------------------------------------------------------------------===
// Kernel patterns
//===----------------------------------------------------------------------===

TEST(KernelGenTest, StencilIsValidAndLoadRich) {
  Function F = buildKernel([](KernelContext &Ctx) {
    emitStencil1D(Ctx, "in", "out", 3, 4);
  });
  EXPECT_TRUE(verifyClean(verifyFunction(F)));
  // Window reuse keeps reloads down: taps + one new load per iteration.
  EXPECT_GT(loadFraction(F), 0.12);
}

TEST(KernelGenTest, StencilLoadsChainAcrossIterations) {
  Function F = buildKernel([](KernelContext &Ctx) {
    emitStencil1D(Ctx, "in", "out", 3, 4);
  });
  DepDag Dag = buildDag(F.block(0));
  std::vector<unsigned> All(Dag.size());
  for (unsigned I = 0; I != Dag.size(); ++I)
    All[I] = I;
  // The sliding window loads Taps values up front plus one new element
  // per later iteration; the in-place cursor bump chains those leading-
  // edge loads in series — the structure balanced scheduling's Chances
  // divisor expects.
  EXPECT_EQ(Dag.loadNodes().size(), 6u); // 3 window + 3 leading edge.
  EXPECT_EQ(longestLoadPath(Dag, All), 4u);
}

TEST(KernelGenTest, GatherChaseLoadsAreSerial) {
  Function F = buildKernel([](KernelContext &Ctx) {
    emitGatherChase(Ctx, "idx", "data", "out", 3);
  });
  DepDag Dag = buildDag(F.block(0));
  // Each iteration chains idx-load -> data-load.
  std::vector<unsigned> All(Dag.size());
  for (unsigned I = 0; I != Dag.size(); ++I)
    All[I] = I;
  EXPECT_GE(longestLoadPath(Dag, All), 2u);
}

TEST(KernelGenTest, ExprTreeKeepsManyValuesLive) {
  Function F = buildKernel([](KernelContext &Ctx) {
    emitExprTree(Ctx, "in", "out", 16);
  });
  EXPECT_TRUE(verifyClean(verifyFunction(F)));
  // 16 leaves + 15 reduction ops + store + addressing setup.
  EXPECT_GE(F.block(0).size(), 32u);
}

TEST(KernelGenTest, RecurrenceIsSerial) {
  Function F = buildKernel([](KernelContext &Ctx) {
    emitRecurrence(Ctx, "b", "out", 5);
  });
  DepDag Dag = buildDag(F.block(0));
  // Critical path is nearly the whole block: serial fmadd chain.
  EXPECT_GT(criticalPathLength(Dag), Dag.size() * 0.5);
}

TEST(KernelGenTest, ComplexMatMulShape) {
  Function F = buildKernel([](KernelContext &Ctx) {
    emitComplexMatMul3(Ctx, "a", "b", "c");
  });
  EXPECT_TRUE(verifyClean(verifyFunction(F)));
  unsigned Loads = 0, Stores = 0;
  for (const Instruction &I : F.block(0)) {
    Loads += I.isLoad();
    Stores += I.isStore();
  }
  // Row-blocked walk: each row of A is loaded once (18 loads) but the
  // columns of B are re-walked per output element (54 loads).
  EXPECT_EQ(Loads, 72u);
  EXPECT_EQ(Stores, 18u); // 9 complex results.
  EXPECT_GT(F.block(0).size(), 150u);
}

TEST(KernelGenTest, FortranAliasingSeparatesArrays) {
  Function FFortran = buildKernel(
      [](KernelContext &Ctx) { emitStencil1D(Ctx, "in", "out", 2, 2); },
      /*Fortran=*/true);
  Function FC = buildKernel(
      [](KernelContext &Ctx) { emitStencil1D(Ctx, "in", "out", 2, 2); },
      /*Fortran=*/false);
  EXPECT_EQ(FFortran.numAliasClasses(), 2u);
  EXPECT_EQ(FC.numAliasClasses(), 1u);
}

TEST(KernelGenTest, ConservativeAliasingAddsDependences) {
  auto EdgeCount = [](bool Fortran, bool AliasAnalysis) {
    Function F("k");
    BasicBlock &BB = F.addBlock("b");
    KernelContext Ctx(F, BB, Fortran, 1);
    emitStencil2D(Ctx, "in", "out", 8, 4);
    DagBuildOptions Options;
    Options.AliasAnalysis = AliasAnalysis;
    return buildDag(BB, Options).numEdges();
  };
  // On the legacy syntactic path, different bases defeat same-base
  // disambiguation, so cross-array ordering hinges on alias classes
  // alone and the merged-class build gains edges.
  EXPECT_GT(EdgeCount(false, false), EdgeCount(true, false));
  // The symbolic analysis folds the generator's constant array bases
  // (spaced 1<<20 apart) and proves the arrays disjoint even inside one
  // merged class: alias classes stop mattering for this kernel.
  EXPECT_EQ(EdgeCount(false, true), EdgeCount(true, true));
}

//===----------------------------------------------------------------------===
// Perfect Club stand-ins
//===----------------------------------------------------------------------===

class BenchmarkTest : public ::testing::TestWithParam<Benchmark> {};

TEST_P(BenchmarkTest, BuildsValidFunction) {
  Function F = buildBenchmark(GetParam());
  EXPECT_EQ(F.name(), benchmarkName(GetParam()));
  EXPECT_TRUE(verifyClean(verifyFunction(F)));
  EXPECT_GE(F.numBlocks(), 3u);
  EXPECT_GT(F.totalInstructions(), 40u);
}

TEST_P(BenchmarkTest, Deterministic) {
  Function A = buildBenchmark(GetParam());
  Function B = buildBenchmark(GetParam());
  EXPECT_EQ(printFunction(A), printFunction(B));
}

TEST_P(BenchmarkTest, HasProfiledFrequencies) {
  Function F = buildBenchmark(GetParam());
  double MaxFreq = 0.0, MinFreq = 1e30;
  for (const BasicBlock &BB : F) {
    MaxFreq = std::max(MaxFreq, BB.frequency());
    MinFreq = std::min(MinFreq, BB.frequency());
  }
  EXPECT_GT(MaxFreq, MinFreq); // Hot and cold blocks differ.
}

TEST_P(BenchmarkTest, UnrollGrowsBlocks) {
  WorkloadOptions Small, Large;
  Small.UnrollFactor = 2;
  Large.UnrollFactor = 8;
  EXPECT_LT(buildBenchmark(GetParam(), Small).totalInstructions(),
            buildBenchmark(GetParam(), Large).totalInstructions());
}

TEST_P(BenchmarkTest, ContainsLoads) {
  EXPECT_GT(loadFraction(buildBenchmark(GetParam())), 0.1);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkTest,
                         ::testing::ValuesIn(allBenchmarks()),
                         [](const auto &Info) {
                           return benchmarkName(Info.param);
                         });

TEST(BenchmarkSuiteTest, EightBenchmarks) {
  EXPECT_EQ(allBenchmarks().size(), 8u);
}

TEST(BenchmarkSuiteTest, PersonalitiesDiffer) {
  // MDG is load-parallel; TRACK is serial. Check the structural signal the
  // whole evaluation rests on: MDG's hot block has far more load-level
  // parallelism than TRACK's.
  Function Mdg = buildBenchmark(Benchmark::MDG);
  Function Track = buildBenchmark(Benchmark::TRACK);

  auto HotBlockParallelLoads = [](const Function &F) {
    const BasicBlock *Hot = &F.block(0);
    for (const BasicBlock &BB : F)
      if (BB.frequency() > Hot->frequency())
        Hot = &BB;
    DepDag Dag = buildDag(*Hot);
    std::vector<unsigned> All(Dag.size());
    for (unsigned I = 0; I != Dag.size(); ++I)
      All[I] = I;
    unsigned NumLoads =
        static_cast<unsigned>(Dag.loadNodes().size());
    if (NumLoads == 0)
      return 0.0;
    // Loads per serial step: higher = more parallel.
    return static_cast<double>(NumLoads) /
           std::max(1u, longestLoadPath(Dag, All));
  };

  EXPECT_GT(HotBlockParallelLoads(Mdg), 2 * HotBlockParallelLoads(Track));
}

//===----------------------------------------------------------------------===
// Huge-block family
//===----------------------------------------------------------------------===

TEST(HugeBlocksTest, FamilySizes) {
  EXPECT_EQ(hugeBlockSizes(), (std::vector<unsigned>{2048, 4096, 8192, 16384}));
}

TEST(HugeBlocksTest, ExactSizeSingleBlockAndValid) {
  for (unsigned Size : hugeBlockSizes()) {
    Function F = buildHugeBlock(Size);
    ASSERT_EQ(F.numBlocks(), 1u) << Size;
    EXPECT_EQ(F.block(0).size(), Size);
    EXPECT_TRUE(verifyClean(verifyFunction(F))) << "huge" << Size;
  }
}

TEST(HugeBlocksTest, Deterministic) {
  for (unsigned Size : {2048u, 4096u}) {
    EXPECT_EQ(printFunction(buildHugeBlock(Size)),
              printFunction(buildHugeBlock(Size)));
  }
  // Distinct sizes draw distinct pattern streams, not a truncation.
  EXPECT_NE(printFunction(buildHugeBlock(2048)).substr(0, 4096),
            printFunction(buildHugeBlock(4096)).substr(0, 4096));
}

TEST(HugeBlocksTest, MixedAliasClassesAndLoadRich) {
  Function F = buildHugeBlock(2048);
  EXPECT_GE(F.numAliasClasses(), 8u); // Fortran mode: one class per array.
  EXPECT_GT(loadFraction(F), 0.3);

  WorkloadOptions C;
  C.FortranAliasing = false;
  Function Conservative = buildHugeBlock(2048, C);
  EXPECT_EQ(Conservative.numAliasClasses(), 1u);
  // The conservative translation can only add memory edges.
  EXPECT_GE(buildDag(Conservative.block(0)).numEdges(),
            buildDag(F.block(0)).numEdges());
}

//===- tests/LogTest.cpp - Structured logging + flight recorder -----------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// The telemetry half of the observability layer (DESIGN.md §3l): the
// NDJSON logger (level gating, sink lines, console mirroring) and the
// per-thread flight-recorder rings (bounded capacity, multi-thread merge,
// dump validity). Every sink assertion parses the emitted bytes back
// through the JSON reader — the contract is "machine-parseable", not
// "looks right".
//
//===----------------------------------------------------------------------===//

#include "obs/FlightRecorder.h"
#include "obs/Log.h"
#include "support/JsonValue.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace bsched;

namespace {

/// RAII tmpfile sink; readLines() rewinds and splits what was written.
class TmpSink {
public:
  TmpSink() : File(std::tmpfile()) {}
  ~TmpSink() {
    if (File)
      std::fclose(File);
  }
  std::FILE *get() { return File; }

  std::vector<std::string> readLines() {
    std::fflush(File);
    std::rewind(File);
    std::vector<std::string> Lines;
    std::string Current;
    int C;
    while ((C = std::fgetc(File)) != EOF) {
      if (C == '\n') {
        Lines.push_back(Current);
        Current.clear();
      } else {
        Current.push_back(static_cast<char>(C));
      }
    }
    if (!Current.empty())
      Lines.push_back(Current);
    return Lines;
  }

private:
  std::FILE *File;
};

} // namespace

//===----------------------------------------------------------------------===//
// Levels and configuration.
//===----------------------------------------------------------------------===//

TEST(LogTest, LevelNamesRoundTrip) {
  for (LogLevel L : {LogLevel::Trace, LogLevel::Debug, LogLevel::Info,
                     LogLevel::Warn, LogLevel::Error, LogLevel::Off}) {
    auto Parsed = parseLogLevel(logLevelName(L));
    ASSERT_TRUE(Parsed.has_value());
    EXPECT_EQ(*Parsed, L);
  }
  EXPECT_FALSE(parseLogLevel("verbose").has_value());
  EXPECT_FALSE(parseLogLevel("").has_value());
  EXPECT_FALSE(parseLogLevel("INFO").has_value()); // Names are lowercase.
}

TEST(LogTest, ConfigureGlobalLoggerRejectsBadLevel) {
  std::string Error;
  EXPECT_FALSE(configureGlobalLogger("loud", "", &Error));
  EXPECT_NE(Error.find("unknown log level"), std::string::npos);
  EXPECT_NE(Error.find("loud"), std::string::npos);
}

TEST(LogTest, EnabledRequiresSinkAndLevel) {
  Logger Log;
  Log.setFlightRecorder(nullptr);
  // No sink: nothing is enabled regardless of level.
  EXPECT_FALSE(Log.enabled(LogLevel::Error));

  TmpSink Sink;
  Log.setSink(Sink.get());
  Log.setLevel(LogLevel::Warn);
#ifndef BSCHED_NO_OBS
  EXPECT_FALSE(Log.enabled(LogLevel::Info));
  EXPECT_TRUE(Log.enabled(LogLevel::Warn));
  EXPECT_TRUE(Log.enabled(LogLevel::Error));
#else
  EXPECT_FALSE(Log.enabled(LogLevel::Error)); // Compiled out entirely.
#endif
  EXPECT_FALSE(Log.enabled(LogLevel::Off));
  Log.closeSink();
  EXPECT_FALSE(Log.enabled(LogLevel::Error));
}

//===----------------------------------------------------------------------===//
// Sink lines.
//===----------------------------------------------------------------------===//

TEST(LogTest, SinkLinesAreParseableNdjson) {
  Logger Log;
  Log.setFlightRecorder(nullptr);
  TmpSink Sink;
  Log.setSink(Sink.get());
  Log.setLevel(LogLevel::Debug);

  Log.log(LogLevel::Info, "test", "hello",
          {{"s", "text"},
           {"u", uint64_t(42)},
           {"i", int64_t(-7)},
           {"f", 2.5},
           {"b", true},
           LogField::raw("r", "[1,2]")});
  Log.log(LogLevel::Error, "test", "quote \"inside\"\nnewline");
  Log.closeSink();

  std::vector<std::string> Lines = Sink.readLines();
#ifdef BSCHED_NO_OBS
  EXPECT_TRUE(Lines.empty());
#else
  ASSERT_EQ(Lines.size(), 2u);

  ErrorOr<JsonValue> First = parseJson(Lines[0]);
  ASSERT_TRUE(First.has_value()) << Lines[0];
  EXPECT_EQ(First->find("level")->asString(), "info");
  EXPECT_EQ(First->find("component")->asString(), "test");
  EXPECT_EQ(First->find("msg")->asString(), "hello");
  EXPECT_GT(First->find("ts_us")->asNumber(), 0.0);
  const JsonValue *Fields = First->find("fields");
  ASSERT_NE(Fields, nullptr);
  EXPECT_EQ(Fields->find("s")->asString(), "text");
  EXPECT_DOUBLE_EQ(Fields->find("u")->asNumber(), 42.0);
  EXPECT_DOUBLE_EQ(Fields->find("i")->asNumber(), -7.0);
  EXPECT_DOUBLE_EQ(Fields->find("f")->asNumber(), 2.5);
  EXPECT_TRUE(Fields->find("b")->asBool());
  ASSERT_TRUE(Fields->find("r")->isArray());
  EXPECT_EQ(Fields->find("r")->elements().size(), 2u);

  // Embedded quotes/newlines must be escaped, not break the line.
  ErrorOr<JsonValue> Second = parseJson(Lines[1]);
  ASSERT_TRUE(Second.has_value()) << Lines[1];
  EXPECT_EQ(Second->find("msg")->asString(), "quote \"inside\"\nnewline");
  // Sequence numbers order events within the process.
  EXPECT_GT(Second->find("seq")->asNumber(), First->find("seq")->asNumber());
#endif
}

TEST(LogTest, SinkThresholdFiltersEvents) {
  Logger Log;
  Log.setFlightRecorder(nullptr);
  TmpSink Sink;
  Log.setSink(Sink.get());
  Log.setLevel(LogLevel::Warn);

  Log.log(LogLevel::Debug, "test", "dropped");
  Log.log(LogLevel::Info, "test", "dropped too");
  Log.log(LogLevel::Warn, "test", "kept");
  Log.closeSink();

  std::vector<std::string> Lines = Sink.readLines();
#ifdef BSCHED_NO_OBS
  EXPECT_TRUE(Lines.empty());
#else
  ASSERT_EQ(Lines.size(), 1u);
  EXPECT_NE(Lines[0].find("\"msg\":\"kept\""), std::string::npos);
#endif
}

TEST(LogTest, ConsoleMirrorsTextAndStructuredEvent) {
  Logger Log;
  Log.setFlightRecorder(nullptr);
  TmpSink Console;
  TmpSink Sink;
  Log.setConsoleStream(Console.get());
  Log.setSink(Sink.get());
  Log.setLevel(LogLevel::Info);

  Log.console(LogLevel::Error, "tool", "error: it broke",
              {{"code", "BS802"}});
  Log.closeSink();

  // The console passthrough is byte-exact in every build — golden CLI
  // output does not depend on BSCHED_NO_OBS.
  std::vector<std::string> ConsoleLines = Console.readLines();
  ASSERT_EQ(ConsoleLines.size(), 1u);
  EXPECT_EQ(ConsoleLines[0], "error: it broke");

  std::vector<std::string> SinkLines = Sink.readLines();
#ifdef BSCHED_NO_OBS
  EXPECT_TRUE(SinkLines.empty());
#else
  ASSERT_EQ(SinkLines.size(), 1u);
  ErrorOr<JsonValue> Event = parseJson(SinkLines[0]);
  ASSERT_TRUE(Event.has_value());
  EXPECT_EQ(Event->find("msg")->asString(), "error: it broke");
  EXPECT_EQ(Event->find("component")->asString(), "tool");
  EXPECT_EQ(Event->find("fields")->find("code")->asString(), "BS802");
#endif
}

TEST(LogTest, ConcurrentWritersNeverInterleaveBytes) {
  Logger Log;
  Log.setFlightRecorder(nullptr);
  TmpSink Sink;
  Log.setSink(Sink.get());
  Log.setLevel(LogLevel::Info);

  constexpr unsigned Threads = 4;
  constexpr unsigned PerThread = 50;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&Log, T] {
      for (unsigned I = 0; I != PerThread; ++I)
        Log.log(LogLevel::Info, "worker", "event",
                {{"t", T}, {"i", I}});
    });
  for (std::thread &W : Workers)
    W.join();
  Log.closeSink();

  std::vector<std::string> Lines = Sink.readLines();
#ifdef BSCHED_NO_OBS
  EXPECT_TRUE(Lines.empty());
#else
  ASSERT_EQ(Lines.size(), Threads * PerThread);
  for (const std::string &Line : Lines)
    EXPECT_TRUE(parseJson(Line).has_value()) << Line;
#endif
}

//===----------------------------------------------------------------------===//
// Flight recorder.
//===----------------------------------------------------------------------===//

TEST(FlightRecorderTest, RingKeepsTheNewestEventsOnly) {
  FlightRecorder Recorder(/*PerThreadCapacity=*/4);
  for (int I = 0; I != 10; ++I) {
    FlightEvent E;
    E.Component = "test";
    E.Message = "event-" + std::to_string(I);
    Recorder.record(std::move(E));
  }
  std::vector<FlightEvent> Events = Recorder.events();
#ifdef BSCHED_NO_OBS
  EXPECT_TRUE(Events.empty());
#else
  ASSERT_EQ(Events.size(), 4u);
  // The oldest six were overwritten; 6..9 survive in order.
  for (int I = 0; I != 4; ++I)
    EXPECT_EQ(Events[I].Message, "event-" + std::to_string(6 + I));
#endif
}

TEST(FlightRecorderTest, TimestampAndTidAreFilledWhenZero) {
  FlightRecorder Recorder(8);
  FlightEvent E;
  E.Component = "test";
  E.Message = "stamped";
  Recorder.record(std::move(E));
  std::vector<FlightEvent> Events = Recorder.events();
#ifndef BSCHED_NO_OBS
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_EQ(Events[0].Tid, obsThreadIndex());
#endif
}

TEST(FlightRecorderTest, ThreadsGetIndependentRings) {
  FlightRecorder Recorder(/*PerThreadCapacity=*/4);
  constexpr unsigned Threads = 3;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&Recorder] {
      // Each thread writes capacity-many events into its own ring; with a
      // shared ring only 4 of the 12 would survive.
      for (int I = 0; I != 4; ++I) {
        FlightEvent E;
        E.Component = "worker";
        E.Message = "m";
        Recorder.record(std::move(E));
      }
    });
  for (std::thread &W : Workers)
    W.join();
  std::vector<FlightEvent> Events = Recorder.events();
#ifdef BSCHED_NO_OBS
  EXPECT_TRUE(Events.empty());
#else
  EXPECT_EQ(Events.size(), Threads * 4u);
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_LE(Events[I - 1].TsUs, Events[I].TsUs); // Merged dump is sorted.
#endif
}

TEST(FlightRecorderTest, DumpJsonIsValidAndNamesTheTrigger) {
  FlightRecorder Recorder(8);
  FlightEvent E;
  E.Level = LogLevel::Error;
  E.Component = "server";
  E.Message = "injected fault";
  E.FieldsJson = "{\"request_id\":\"r1\",\"code\":\"BS810\"}";
  Recorder.record(std::move(E));
  Recorder.recordSpan("compile", 1234, "{\"kernel\":\"k\"}");

  std::string Dump = Recorder.dumpJson("BS810");
  ErrorOr<JsonValue> Doc = parseJson(Dump);
  ASSERT_TRUE(Doc.has_value()) << Dump;
  const JsonValue *Body = Doc->find("flight_recorder");
  ASSERT_NE(Body, nullptr);
  EXPECT_EQ(Body->find("trigger")->asString(), "BS810");
  ASSERT_TRUE(Body->find("events")->isArray());
#ifdef BSCHED_NO_OBS
  EXPECT_TRUE(Body->find("events")->elements().empty());
#else
  const auto &Events = Body->find("events")->elements();
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_EQ(Events[0].find("level")->asString(), "error");
  EXPECT_EQ(Events[0].find("kind")->asString(), "log");
  EXPECT_EQ(Events[0].find("fields")->find("request_id")->asString(), "r1");
  EXPECT_EQ(Events[1].find("kind")->asString(), "span");
#endif
}

TEST(FlightRecorderTest, ClearEmptiesEveryRing) {
  FlightRecorder Recorder(8);
  FlightEvent E;
  E.Message = "gone";
  Recorder.record(std::move(E));
  Recorder.clear();
  EXPECT_TRUE(Recorder.events().empty());
}

TEST(FlightRecorderTest, LoggerFeedsRingEvenWhenSinkFilters) {
  Logger Log;
  FlightRecorder Recorder(8);
  Log.setFlightRecorder(&Recorder);
  TmpSink Sink;
  Log.setSink(Sink.get());
  Log.setLevel(LogLevel::Error); // Sink threshold far above Debug...

  Log.log(LogLevel::Debug, "server", "request", {{"request_id", "r9"}});
  Log.log(LogLevel::Trace, "server", "too fine"); // ...Trace never rings.
  Log.setFlightRecorder(nullptr);
  Log.closeSink();

  EXPECT_TRUE(Sink.readLines().empty()); // Below the sink threshold.
  std::vector<FlightEvent> Events = Recorder.events();
#ifdef BSCHED_NO_OBS
  EXPECT_TRUE(Events.empty());
#else
  ASSERT_EQ(Events.size(), 1u); // Debug ringed, Trace did not.
  EXPECT_EQ(Events[0].Message, "request");
  EXPECT_NE(Events[0].FieldsJson.find("r9"), std::string::npos);
#endif
}

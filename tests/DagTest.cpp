//===- tests/DagTest.cpp - Unit tests for the dependence DAG --------------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "dag/DagBuilder.h"
#include "dag/DagUtils.h"
#include "dag/DepDag.h"
#include "dag/Reachability.h"
#include "ir/IrBuilder.h"
#include "tests/TestDagHelpers.h"

#include <gtest/gtest.h>

using namespace bsched;

namespace {
Reg vi(unsigned Id) { return Reg::makeVirtual(RegClass::Int, Id); }
Reg vf(unsigned Id) { return Reg::makeVirtual(RegClass::Fp, Id); }

/// Returns the DepKind of the From->To edge; fails the test if absent.
DepKind edgeKind(const DepDag &Dag, unsigned From, unsigned To) {
  for (const DepEdge &E : Dag.succs(From))
    if (E.Other == To)
      return E.Kind;
  ADD_FAILURE() << "no edge " << From << " -> " << To;
  return DepKind::Data;
}
} // namespace

//===----------------------------------------------------------------------===
// DepDag basics
//===----------------------------------------------------------------------===

TEST(DepDagTest, ExcludesTrailingTerminator) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 1));
  BB.append(Instruction::makeRet());
  DepDag Dag(BB);
  EXPECT_EQ(Dag.size(), 1u);
}

TEST(DepDagTest, EdgeDeduplication) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 1));
  BB.append(Instruction::makeLoadImm(vi(1), 2));
  DepDag Dag(BB);
  Dag.addEdge(0, 1, DepKind::Data);
  Dag.addEdge(0, 1, DepKind::Anti); // Duplicate pair: ignored.
  EXPECT_EQ(Dag.numEdges(), 1u);
  EXPECT_EQ(Dag.succs(0).size(), 1u);
  EXPECT_EQ(Dag.preds(1).size(), 1u);
  EXPECT_EQ(edgeKind(Dag, 0, 1), DepKind::Data);
}

TEST(DepDagTest, LoadNodesAndWeights) {
  DepDag Dag = fixtures::makeFigure1Dag();
  EXPECT_EQ(Dag.loadNodes(), (std::vector<unsigned>{0, 1}));
  EXPECT_TRUE(Dag.isLoad(0));
  EXPECT_FALSE(Dag.isLoad(2));
  Dag.setWeight(0, 3.5);
  EXPECT_DOUBLE_EQ(Dag.weight(0), 3.5);
}

TEST(DepDagTest, FreezePreservesContentsAndOrder) {
  // Freeze packs the build lists into CSR; every accessor must return the
  // same contents in the same per-node insertion order, and freezing twice
  // must be a no-op.
  DepDag Dag = fixtures::makeFigure7Dag();
  ASSERT_FALSE(Dag.isFrozen());
  std::vector<std::vector<DepEdge>> Succs(Dag.size()), Preds(Dag.size());
  for (unsigned I = 0; I != Dag.size(); ++I) {
    Succs[I].assign(Dag.succs(I).begin(), Dag.succs(I).end());
    Preds[I].assign(Dag.preds(I).begin(), Dag.preds(I).end());
  }
  unsigned Edges = Dag.numEdges();
  for (int Round = 0; Round != 2; ++Round) {
    Dag.freeze();
    ASSERT_TRUE(Dag.isFrozen());
    EXPECT_EQ(Dag.numEdges(), Edges);
    for (unsigned I = 0; I != Dag.size(); ++I) {
      ASSERT_EQ(Dag.succs(I).size(), Succs[I].size()) << "node " << I;
      ASSERT_EQ(Dag.preds(I).size(), Preds[I].size()) << "node " << I;
      for (unsigned K = 0; K != Succs[I].size(); ++K) {
        EXPECT_EQ(Dag.succs(I)[K].Other, Succs[I][K].Other);
        EXPECT_EQ(Dag.succs(I)[K].Kind, Succs[I][K].Kind);
      }
      for (unsigned K = 0; K != Preds[I].size(); ++K) {
        EXPECT_EQ(Dag.preds(I)[K].Other, Preds[I][K].Other);
        EXPECT_EQ(Dag.preds(I)[K].Kind, Preds[I][K].Kind);
      }
    }
  }
}

TEST(DepDagTest, AddEdgeAfterFreezeThawsAndDeduplicates) {
  DepDag Dag = fixtures::makeFigure1Dag(); // Edges 0->1, 1->6.
  Dag.freeze();
  // Duplicate pair on a frozen DAG: still deduplicated, first kind wins.
  Dag.addEdge(0, 1, DepKind::Anti);
  EXPECT_EQ(Dag.numEdges(), 2u);
  EXPECT_EQ(edgeKind(Dag, 0, 1), DepKind::Data);
  // A genuinely new edge thaws the CSR back to build lists and lands.
  Dag.addEdge(2, 3, DepKind::Data);
  EXPECT_FALSE(Dag.isFrozen());
  EXPECT_EQ(Dag.numEdges(), 3u);
  EXPECT_TRUE(Dag.hasEdge(2, 3));
  EXPECT_TRUE(Dag.hasEdge(0, 1));
  EXPECT_TRUE(Dag.hasEdge(1, 6));
  // Refreeze: the thawed edge survives the round trip.
  Dag.freeze();
  EXPECT_TRUE(Dag.hasEdge(2, 3));
  EXPECT_EQ(Dag.preds(3).size(), 1u);
}

TEST(DepDagTest, RebuildRecyclesAcrossBlocks) {
  // One arena DAG across two different blocks (the pipeline's reuse
  // pattern): rebuild must fully reset nodes, edges, weights, and the
  // frozen state, regardless of what the previous block left behind.
  BasicBlock First = fixtures::makeFigureBlock({true, true, false});
  BasicBlock Second = fixtures::makeFigureBlock({false, true});
  DepDag Dag(First);
  Dag.addEdge(0, 2, DepKind::Data);
  Dag.setWeight(0, 9.0);
  Dag.freeze();

  Dag.rebuild(Second);
  EXPECT_FALSE(Dag.isFrozen());
  EXPECT_EQ(Dag.size(), 2u);
  EXPECT_EQ(Dag.numEdges(), 0u);
  EXPECT_TRUE(Dag.succs(0).empty());
  EXPECT_TRUE(Dag.preds(1).empty());
  EXPECT_FALSE(Dag.isLoad(0));
  EXPECT_TRUE(Dag.isLoad(1));
  EXPECT_EQ(Dag.loadNodes(), (std::vector<unsigned>{1}));
  // Weights reset to the default (1.0), not the stale 9.0.
  EXPECT_DOUBLE_EQ(Dag.weight(0), 1.0);
  Dag.addEdge(0, 1, DepKind::Data);
  EXPECT_EQ(edgeKind(Dag, 0, 1), DepKind::Data);
}

TEST(DepDagTest, BuilderReturnsFrozenDagIntoArena) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 1));
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(1), vi(0), 2));
  DepDag Arena;
  buildDagInto(Arena, BB);
  EXPECT_TRUE(Arena.isFrozen());
  ASSERT_EQ(Arena.numEdges(), 1u);
  EXPECT_EQ(edgeKind(Arena, 0, 1), DepKind::Data);
  // Same arena, different block: identical result to a fresh buildDag.
  BasicBlock Other("c");
  Other.append(Instruction::makeLoadImm(vi(0), 1));
  Other.append(Instruction::makeLoadImm(vi(0), 2));
  buildDagInto(Arena, Other);
  EXPECT_TRUE(Arena.isFrozen());
  ASSERT_EQ(Arena.numEdges(), 1u);
  EXPECT_EQ(edgeKind(Arena, 0, 1), DepKind::Output);
}

TEST(DepDagTest, DotOutputMentionsEveryNode) {
  DepDag Dag = fixtures::makeFigure1Dag();
  std::string Dot = Dag.toDot("fig1");
  for (unsigned I = 0; I != Dag.size(); ++I)
    EXPECT_NE(Dot.find("n" + std::to_string(I) + " "), std::string::npos);
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
}

//===----------------------------------------------------------------------===
// DagBuilder: register dependences
//===----------------------------------------------------------------------===

TEST(DagBuilderTest, RawDependence) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 1));
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(1), vi(0), 2));
  DepDag Dag = buildDag(BB);
  ASSERT_EQ(Dag.numEdges(), 1u);
  EXPECT_EQ(edgeKind(Dag, 0, 1), DepKind::Data);
}

TEST(DagBuilderTest, AntiDependence) {
  BasicBlock BB("b");
  // i0: use %i0; i1: redefine %i0 -> WAR edge 0 -> 1.
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(1), vi(0), 1));
  BB.append(Instruction::makeLoadImm(vi(0), 9));
  DepDag Dag = buildDag(BB);
  ASSERT_EQ(Dag.numEdges(), 1u);
  EXPECT_EQ(edgeKind(Dag, 0, 1), DepKind::Anti);
}

TEST(DagBuilderTest, OutputDependence) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 1));
  BB.append(Instruction::makeLoadImm(vi(0), 2));
  DepDag Dag = buildDag(BB);
  ASSERT_EQ(Dag.numEdges(), 1u);
  EXPECT_EQ(edgeKind(Dag, 0, 1), DepKind::Output);
}

TEST(DagBuilderTest, RawBeatsOutputOnSamePair) {
  BasicBlock BB("b");
  // i1 both reads and redefines %i0: data dependence dominates.
  BB.append(Instruction::makeLoadImm(vi(0), 1));
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(0), vi(0), 1));
  DepDag Dag = buildDag(BB);
  ASSERT_EQ(Dag.numEdges(), 1u);
  EXPECT_EQ(edgeKind(Dag, 0, 1), DepKind::Data);
}

TEST(DagBuilderTest, IndependentInstructionsNoEdges) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 1));
  BB.append(Instruction::makeLoadImm(vi(1), 2));
  BB.append(Instruction::makeBinary(Opcode::FAdd, vf(0), vf(1), vf(2)));
  DepDag Dag = buildDag(BB);
  EXPECT_EQ(Dag.numEdges(), 0u);
}

TEST(DagBuilderTest, UseUseNoEdge) {
  BasicBlock BB("b");
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(1), vi(0), 1));
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(2), vi(0), 2));
  DepDag Dag = buildDag(BB);
  EXPECT_EQ(Dag.numEdges(), 0u);
}

//===----------------------------------------------------------------------===
// DagBuilder: memory dependences
//===----------------------------------------------------------------------===

namespace {
/// store [base+Off] !C ; imm value 7.
Instruction storeAt(Reg Val, Reg Base, int64_t Off, AliasClassId C) {
  return Instruction::makeStore(Opcode::Store, Val, Base, Off, C);
}
Instruction loadAt(Reg Dst, Reg Base, int64_t Off, AliasClassId C) {
  return Instruction::makeLoad(Opcode::Load, Dst, Base, Off, C);
}
} // namespace

TEST(DagBuilderMemTest, StoreThenLoadSameWordOrdered) {
  BasicBlock BB("b");
  BB.append(storeAt(vi(1), vi(0), 0, 0));
  BB.append(loadAt(vi(2), vi(0), 0, 0));
  DepDag Dag = buildDag(BB);
  EXPECT_EQ(edgeKind(Dag, 0, 1), DepKind::Memory);
}

TEST(DagBuilderMemTest, DifferentAliasClassesIndependent) {
  BasicBlock BB("b");
  BB.append(storeAt(vi(1), vi(0), 0, 0));
  BB.append(loadAt(vi(2), vi(0), 0, 1));
  DepDag Dag = buildDag(BB);
  EXPECT_EQ(Dag.numEdges(), 0u);
}

TEST(DagBuilderMemTest, SameBaseDifferentOffsetDisambiguated) {
  BasicBlock BB("b");
  BB.append(storeAt(vi(1), vi(0), 0, 0));
  BB.append(loadAt(vi(2), vi(0), 8, 0));
  DepDag Dag = buildDag(BB, {.DisambiguateSameBase = true});
  EXPECT_EQ(Dag.numEdges(), 0u);
}

TEST(DagBuilderMemTest, ConservativeModeOrdersDifferentOffsets) {
  BasicBlock BB("b");
  BB.append(storeAt(vi(1), vi(0), 0, 0));
  BB.append(loadAt(vi(2), vi(0), 8, 0));
  DepDag Dag =
      buildDag(BB, {.DisambiguateSameBase = false, .AliasAnalysis = false});
  EXPECT_EQ(edgeKind(Dag, 0, 1), DepKind::Memory);
}

TEST(DagBuilderMemTest, DifferentBasesConservativelyOrdered) {
  BasicBlock BB("b");
  BB.append(storeAt(vi(1), vi(0), 0, 0));
  BB.append(loadAt(vi(2), vi(5), 0, 0));
  DepDag Dag = buildDag(BB);
  EXPECT_EQ(edgeKind(Dag, 0, 1), DepKind::Memory);
}

TEST(DagBuilderMemTest, BaseRedefinitionDefeatsSyntacticDisambiguation) {
  BasicBlock BB("b");
  // store [%i0+0]; %i0 = addi %i0, 8; load [%i0+0]: same register name but
  // a different value. The addresses are (old %i0 + 0) vs (old %i0 + 8):
  // actually disjoint, but the legacy syntactic analyzer cannot know; it
  // must be conservative across versions.
  BB.append(storeAt(vi(1), vi(0), 0, 0));
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(0), vi(0), 8));
  BB.append(loadAt(vi(2), vi(0), 0, 0));
  DepDag Dag = buildDag(BB, {.AliasAnalysis = false});
  EXPECT_TRUE(Dag.hasEdge(0, 2));
}

TEST(DagBuilderMemTest, SymbolicAnalysisTracksBaseRedefinition) {
  // The same block under the symbolic address analysis: the rewrite
  // %i0 += 8 is folded, the two addresses are base+0 and base+8, and the
  // false edge is pruned.
  BasicBlock BB("b");
  BB.append(storeAt(vi(1), vi(0), 0, 0));
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(0), vi(0), 8));
  BB.append(loadAt(vi(2), vi(0), 0, 0));
  DagAliasStats Stats;
  DagBuildOptions Options;
  Options.AliasStats = &Stats;
  DepDag Dag = buildDag(BB, Options);
  EXPECT_FALSE(Dag.hasEdge(0, 2));
  EXPECT_EQ(Stats.Queries, 1u);
  EXPECT_EQ(Stats.NoAlias, 1u);
  EXPECT_EQ(Stats.EdgesPruned, 1u);
}

TEST(DagBuilderMemTest, ConservativeEdgeSetPinnedBitExact) {
  // Regression pin for the legacy (AliasAnalysis off) builder: the exact
  // edge set of a block exercising every legacy path — same-base
  // disambiguation, must-alias erasure, the untracked-address store
  // barrier (DisambiguateSameBase=false), and base redefinition — must
  // never drift.
  // Stored values use registers disjoint from everything else so no
  // memory-pair edge collides with a register edge (addEdge keeps the
  // first kind).
  for (bool Disambiguate : {true, false}) {
    BasicBlock BB("b");
    BB.append(loadAt(vi(1), vi(0), 0, 0));                           // 0
    BB.append(storeAt(vi(7), vi(0), 8, 0));                          // 1
    BB.append(storeAt(vi(8), vi(0), 8, 0));                          // 2
    BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(0), vi(0), 8));
    BB.append(loadAt(vi(2), vi(0), 8, 0));                           // 4
    BB.append(storeAt(vi(9), vi(4), 0, 0));                          // 5
    BB.append(loadAt(vi(5), vi(0), 16, 0));                          // 6
    DepDag Dag = buildDag(BB, {.DisambiguateSameBase = Disambiguate,
                               .AliasAnalysis = false});
    std::vector<std::pair<unsigned, unsigned>> MemEdges;
    for (unsigned I = 0; I != Dag.size(); ++I)
      for (const DepEdge &E : Dag.succs(I))
        if (E.Kind == DepKind::Memory)
          MemEdges.emplace_back(I, E.Other);
    using Edges = std::vector<std::pair<unsigned, unsigned>>;
    if (Disambiguate) {
      // 0-1/0-2 pruned (same base value, offsets 0 vs 8); 1-2 must-alias
      // WAW erases 1; everything across the version bump or the foreign
      // base %i4 stays conservatively ordered.
      EXPECT_EQ(MemEdges, (Edges{{0, 5},
                                 {1, 2},
                                 {2, 4},
                                 {2, 5},
                                 {2, 6},
                                 {4, 5},
                                 {5, 6}}))
          << "disambiguate=" << Disambiguate;
    } else {
      // Untracked bases: every store orders with everything live and then
      // acts as a full barrier (both live lists drop), so each access
      // orders only against the nearest store.
      EXPECT_EQ(MemEdges, (Edges{{0, 1},
                                 {1, 2},
                                 {2, 4},
                                 {2, 5},
                                 {4, 5},
                                 {5, 6}}))
          << "disambiguate=" << Disambiguate;
    }
  }
}

TEST(DagBuilderMemTest, LoadLoadNeverOrdered) {
  BasicBlock BB("b");
  BB.append(loadAt(vi(1), vi(0), 0, 0));
  BB.append(loadAt(vi(2), vi(0), 0, 0));
  DepDag Dag = buildDag(BB);
  EXPECT_EQ(Dag.numEdges(), 0u);
}

TEST(DagBuilderMemTest, WarLoadThenStore) {
  BasicBlock BB("b");
  BB.append(loadAt(vi(1), vi(0), 0, 0));
  BB.append(storeAt(vi(2), vi(0), 0, 0));
  DepDag Dag = buildDag(BB);
  EXPECT_EQ(edgeKind(Dag, 0, 1), DepKind::Memory);
}

TEST(DagBuilderMemTest, WawStores) {
  BasicBlock BB("b");
  BB.append(storeAt(vi(1), vi(0), 0, 0));
  BB.append(storeAt(vi(2), vi(0), 0, 0));
  DepDag Dag = buildDag(BB);
  EXPECT_EQ(edgeKind(Dag, 0, 1), DepKind::Memory);
}

TEST(DagBuilderMemTest, PrunedLoadStillProtectedTransitively) {
  // The soundness case that motivated must-alias-only pruning:
  //   i0: load  [%i5 + 0]   (base B)
  //   i1: store [%i0 + 0]   (base A, unknown relation to B) - WAR with i0
  //   i2: store [%i0 + 4]   (base A, provably disjoint from i1)
  // i2 may alias i0's word, so i0 must be ordered before i2 - directly or
  // through i1.
  BasicBlock BB("b");
  BB.append(loadAt(vi(1), vi(5), 0, 0));
  BB.append(storeAt(vi(2), vi(0), 0, 0));
  BB.append(storeAt(vi(3), vi(0), 4, 0));
  DepDag Dag = buildDag(BB);
  TransitiveClosure Closure(Dag);
  EXPECT_TRUE(Closure.reaches(0, 2));
}

TEST(DagBuilderMemTest, MustAliasStoreChainIsLinear) {
  // Three stores to the same word: each orders only with its neighbour
  // (the earlier one is pruned), giving a chain, not a clique.
  BasicBlock BB("b");
  BB.append(storeAt(vi(1), vi(0), 0, 0));
  BB.append(storeAt(vi(2), vi(0), 0, 0));
  BB.append(storeAt(vi(3), vi(0), 0, 0));
  DepDag Dag = buildDag(BB);
  EXPECT_TRUE(Dag.hasEdge(0, 1));
  EXPECT_TRUE(Dag.hasEdge(1, 2));
  EXPECT_FALSE(Dag.hasEdge(0, 2)); // Pruned: protected through the chain.
  TransitiveClosure Closure(Dag);
  EXPECT_TRUE(Closure.reaches(0, 2));
}

//===----------------------------------------------------------------------===
// Reachability
//===----------------------------------------------------------------------===

TEST(ReachabilityTest, TransitiveClosureOnChain) {
  DepDag Dag = fixtures::makeFigureDag({false, false, false, false},
                                      {{0, 1}, {1, 2}, {2, 3}});
  TransitiveClosure Closure(Dag);
  EXPECT_TRUE(Closure.reaches(0, 3));
  EXPECT_TRUE(Closure.reaches(1, 3));
  EXPECT_FALSE(Closure.reaches(3, 0));
  EXPECT_FALSE(Closure.reaches(1, 0));
  EXPECT_EQ(Closure.succsOf(0).count(), 3u);
  EXPECT_EQ(Closure.predsOf(3).count(), 3u);
}

TEST(ReachabilityTest, IndependentOfExcludesSelfPredsSuccs) {
  DepDag Dag = fixtures::makeFigure1Dag(); // L0->L1->X4; X0..X3 free.
  TransitiveClosure Closure(Dag);
  BitVector Ind = Closure.independentOf(1); // L1.
  EXPECT_FALSE(Ind.test(0));                // Pred L0.
  EXPECT_FALSE(Ind.test(1));                // Self.
  EXPECT_FALSE(Ind.test(6));                // Succ X4.
  EXPECT_TRUE(Ind.test(2));
  EXPECT_TRUE(Ind.test(5));
  EXPECT_EQ(Ind.count(), 4u);
}

TEST(ReachabilityTest, DiamondReachability) {
  DepDag Dag = fixtures::makeFigureDag({false, false, false, false},
                                      {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  TransitiveClosure Closure(Dag);
  EXPECT_TRUE(Closure.reaches(0, 3));
  EXPECT_FALSE(Closure.reaches(1, 2));
  BitVector Ind = Closure.independentOf(1);
  EXPECT_TRUE(Ind.test(2)); // The two diamond arms are independent.
  EXPECT_EQ(Ind.count(), 1u);
}

//===----------------------------------------------------------------------===
// DagUtils
//===----------------------------------------------------------------------===

TEST(DagUtilsTest, ConnectedComponentsIgnoreDirection) {
  DepDag Dag = fixtures::makeFigureDag({false, false, false, false, false},
                                      {{0, 2}, {1, 2}, {3, 4}});
  BitVector All(Dag.size());
  All.setAll();
  auto Components = connectedComponents(Dag, All);
  ASSERT_EQ(Components.size(), 2u);
  // Components hold ascending node lists.
  EXPECT_EQ(Components[0], (std::vector<unsigned>{0, 1, 2}));
  EXPECT_EQ(Components[1], (std::vector<unsigned>{3, 4}));
}

TEST(DagUtilsTest, ComponentsRespectSubset) {
  DepDag Dag = fixtures::makeFigureDag({false, false, false},
                                      {{0, 1}, {1, 2}});
  BitVector Subset(Dag.size());
  Subset.set(0);
  Subset.set(2); // Node 1 removed: 0 and 2 disconnect.
  auto Components = connectedComponents(Dag, Subset);
  EXPECT_EQ(Components.size(), 2u);
}

TEST(DagUtilsTest, LongestLoadPathCountsSerialLoadsOnly) {
  // L-L-X-L chain plus a parallel load: longest load path is 3.
  DepDag Dag = fixtures::makeFigureDag({true, true, false, true, true},
                                      {{0, 1}, {1, 2}, {2, 3}});
  std::vector<unsigned> Component{0, 1, 2, 3, 4};
  EXPECT_EQ(longestLoadPath(Dag, Component), 3u);
}

TEST(DagUtilsTest, LongestLoadPathZeroWithoutLoads) {
  DepDag Dag = fixtures::makeFigureDag({false, false}, {{0, 1}});
  EXPECT_EQ(longestLoadPath(Dag, {0, 1}), 0u);
}

TEST(DagUtilsTest, LongestLoadPathRespectsComponentBoundary) {
  // Loads 0 -> 1 -> 2 in the DAG, but only {0, 1} passed as component.
  DepDag Dag =
      fixtures::makeFigureDag({true, true, true}, {{0, 1}, {1, 2}});
  EXPECT_EQ(longestLoadPath(Dag, {0, 1}), 2u);
}

TEST(DagUtilsTest, LevelsFromLeaves) {
  DepDag Dag = fixtures::makeFigureDag({false, false, false, false},
                                      {{0, 1}, {1, 3}, {2, 3}});
  std::vector<unsigned> Levels = levelsFromLeaves(Dag);
  EXPECT_EQ(Levels[3], 1u);
  EXPECT_EQ(Levels[2], 2u);
  EXPECT_EQ(Levels[1], 2u);
  EXPECT_EQ(Levels[0], 3u);
}

TEST(DagUtilsTest, LevelsWithinSubset) {
  DepDag Dag = fixtures::makeFigureDag({false, false, false},
                                      {{0, 1}, {1, 2}});
  BitVector Subset(Dag.size());
  Subset.set(0);
  Subset.set(2); // Without node 1, 0 no longer reaches 2.
  std::vector<unsigned> Levels = levelsFromLeavesWithin(Dag, Subset);
  EXPECT_EQ(Levels[0], 1u);
  EXPECT_EQ(Levels[1], 0u); // Outside the subset.
  EXPECT_EQ(Levels[2], 1u);
}

TEST(DagUtilsTest, CriticalPathUsesWeights) {
  DepDag Dag = fixtures::makeFigureDag({true, false}, {{0, 1}});
  Dag.setWeight(0, 5.0);
  Dag.setWeight(1, 1.0);
  EXPECT_DOUBLE_EQ(criticalPathLength(Dag), 6.0);
}

//===----------------------------------------------------------------------===
// Integration: builder + interpreter-visible ordering on real IR
//===----------------------------------------------------------------------===

TEST(DagIntegrationTest, SaxpyKernelDependences) {
  Function F("saxpy");
  BasicBlock &BB = F.addBlock("body");
  IrBuilder B(F, BB);
  AliasClassId X = F.getOrCreateAliasClass("x");
  AliasClassId Y = F.getOrCreateAliasClass("y");

  Reg BaseX = B.emitLoadImm(0);     // 0
  Reg BaseY = B.emitLoadImm(1000);  // 1
  Reg A = B.emitFLoadImm(2.0);      // 2
  Reg Xi = B.emitFLoad(BaseX, 0, X);   // 3
  Reg Yi = B.emitFLoad(BaseY, 0, Y);   // 4
  Reg Prod = B.emitFMadd(A, Xi, Yi);   // 5
  B.emitStore(Prod, BaseY, 0, Y);      // 6
  B.emitRet();

  DepDag Dag = buildDag(BB);
  EXPECT_EQ(Dag.size(), 7u);
  EXPECT_TRUE(Dag.hasEdge(3, 5));
  EXPECT_TRUE(Dag.hasEdge(4, 5));
  EXPECT_TRUE(Dag.hasEdge(5, 6));
  EXPECT_TRUE(Dag.hasEdge(4, 6)); // Load y then store y: same word (WAR).
  EXPECT_FALSE(Dag.hasEdge(3, 4)); // Different arrays: independent loads.
}

//===- tests/FrontendTest.cpp - Kernel-language frontend tests ------------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// End-to-end correctness: kernels are compiled to IR, the IR is executed
// by the reference interpreter against seeded array memory, and the
// results are compared with values computed directly in the test.
//
//===----------------------------------------------------------------------===//

#include "frontend/KernelLang.h"
#include "ir/Interpreter.h"
#include "ir/IrBuilder.h"
#include "ir/IrVerifier.h"
#include "pipeline/Pipeline.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

using namespace bsched;

namespace {

/// Seeds array element \p Index of \p A with \p Value.
void seed(Interpreter &I, const ArrayBinding &A, int64_t Index,
          double Value) {
  // Store through the interpreter's raw memory by running a tiny block.
  Function F("seed");
  BasicBlock &BB = F.addBlock("b");
  IrBuilder B(F, BB);
  Reg Base = B.emitLoadImm(A.BaseAddress);
  Reg V = B.emitFLoadImm(Value);
  B.emitStore(V, Base, 8 * Index, A.Alias);
  I.run(BB);
}

/// Reads array element \p Index of \p A as a double.
double peek(const Interpreter &I, const ArrayBinding &A, int64_t Index) {
  auto Image = I.memoryImage();
  auto It = Image.find({A.Alias, A.BaseAddress + 8 * Index});
  if (It == Image.end())
    return std::nan("");
  double D;
  std::memcpy(&D, &It->second, sizeof(D));
  return D;
}

} // namespace

TEST(FrontendTest, CompilesMinimalKernel) {
  KernelLangResult R = compileKernelLang(
      "kernel k(a) { a[0] = 1.5; }");
  ASSERT_TRUE(R.ok()) << (R.Diags.empty() ? "" : R.Diags[0].str());
  ASSERT_EQ(R.Program->numBlocks(), 1u);
  EXPECT_EQ(R.Program->block(0).name(), "k");
  EXPECT_TRUE(verifyClean(verifyFunction(*R.Program)));
  EXPECT_NE(R.findArray("a"), nullptr);
  EXPECT_EQ(R.findArray("zzz"), nullptr);
}

TEST(FrontendTest, ConstantAssignmentExecutes) {
  KernelLangResult R = compileKernelLang(
      "kernel k(a) { a[3] = 2.5 * 4.0 + 1.0; }");
  ASSERT_TRUE(R.ok());
  Interpreter I;
  I.run(R.Program->block(0));
  EXPECT_DOUBLE_EQ(peek(I, *R.findArray("a"), 3), 11.0);
}

TEST(FrontendTest, SaxpyLoopComputesCorrectValues) {
  KernelLangResult R = compileKernelLang(R"(
kernel saxpy(x, y) freq 10 {
  for i = 0 to 4 {
    y[i] = 2.0 * x[i] + y[i];
  }
}
)");
  ASSERT_TRUE(R.ok()) << (R.Diags.empty() ? "" : R.Diags[0].str());

  Interpreter I;
  const ArrayBinding *X = R.findArray("x");
  const ArrayBinding *Y = R.findArray("y");
  ASSERT_TRUE(X && Y);
  for (int K = 0; K != 4; ++K) {
    seed(I, *X, K, 1.0 + K);
    seed(I, *Y, K, 10.0 * K);
  }
  I.run(R.Program->block(0));
  for (int K = 0; K != 4; ++K)
    EXPECT_DOUBLE_EQ(peek(I, *Y, K), 2.0 * (1.0 + K) + 10.0 * K) << K;
}

TEST(FrontendTest, StencilWithNeighborsAndScalarReduction) {
  KernelLangResult R = compileKernelLang(R"(
kernel smooth(a, b) {
  s = 0.0;
  for i = 0 to 3 {
    b[i] = 0.25*a[i-1] + 0.5*a[i] + 0.25*a[i+1];
    s = s + b[i];
  }
  norm[0] = s;
}
)");
  ASSERT_TRUE(R.ok()) << (R.Diags.empty() ? "" : R.Diags[0].str());

  Interpreter I;
  const ArrayBinding *A = R.findArray("a");
  ASSERT_TRUE(A);
  double Vals[] = {4.0, 8.0, 12.0, 16.0, 20.0};
  for (int K = -1; K <= 3; ++K)
    seed(I, *A, K, Vals[K + 1]);
  I.run(R.Program->block(0));

  const ArrayBinding *BArr = R.findArray("b");
  double Expect0 = 0.25 * 4 + 0.5 * 8 + 0.25 * 12;   // 8.
  double Expect2 = 0.25 * 12 + 0.5 * 16 + 0.25 * 20; // 16.
  EXPECT_DOUBLE_EQ(peek(I, *BArr, 0), Expect0);
  EXPECT_DOUBLE_EQ(peek(I, *BArr, 2), Expect2);
  // The scalar sum lands in norm[0] and in smooth.__result slot 0.
  EXPECT_DOUBLE_EQ(peek(I, *R.findArray("norm"), 0), 8 + 12 + 16);
  EXPECT_DOUBLE_EQ(peek(I, *R.findArray("smooth.__result"), 0),
                   8.0 + 12 + 16);
}

TEST(FrontendTest, UnrollScalesFrequency) {
  KernelLangResult R = compileKernelLang(
      "kernel k(a) freq 100 { for i = 0 to 64 unroll 4 { a[i] = 1.0; } }");
  ASSERT_TRUE(R.ok());
  // 64 trips at unroll 4 -> 16 block executions x kernel freq 100.
  EXPECT_DOUBLE_EQ(R.Program->block(0).frequency(), 1600.0);
}

TEST(FrontendTest, SlidingWindowReusesLoads) {
  // a[i+1] in one iteration is a[i] in the next: with the value cache the
  // 3-tap stencil over 4 iterations loads 6 distinct elements, not 12.
  KernelLangResult R = compileKernelLang(R"(
kernel smooth(a, b) {
  for i = 0 to 4 {
    b[i] = a[i-1] + a[i] + a[i+1];
  }
}
)");
  ASSERT_TRUE(R.ok());
  unsigned Loads = 0;
  for (const Instruction &I : R.Program->block(0))
    Loads += I.isLoad();
  EXPECT_EQ(Loads, 6u);
}

TEST(FrontendTest, StoreInvalidatesOnlyTheStoredElement) {
  // b[i] is stored then b[i] is reloaded (forwarded); a[i] stays cached.
  KernelLangResult R = compileKernelLang(R"(
kernel k(a, b) {
  for i = 0 to 2 {
    b[i] = a[i] * 2.0;
    c[i] = b[i] + a[i];
  }
}
)");
  ASSERT_TRUE(R.ok());
  unsigned Loads = 0;
  for (const Instruction &I : R.Program->block(0))
    Loads += I.isLoad();
  // Only the two a[i] loads: b[i] forwards from the store.
  EXPECT_EQ(Loads, 2u);

  Interpreter I;
  const ArrayBinding *A = R.findArray("a");
  seed(I, *A, 0, 3.0);
  seed(I, *A, 1, 5.0);
  I.run(R.Program->block(0));
  EXPECT_DOUBLE_EQ(peek(I, *R.findArray("c"), 0), 9.0);
  EXPECT_DOUBLE_EQ(peek(I, *R.findArray("c"), 1), 15.0);
}

TEST(FrontendTest, ConservativeAliasingClearsCacheOnStores) {
  const char *Src = R"(
kernel k(a, b) {
  for i = 0 to 2 {
    b[i] = a[i] * 2.0;
    c[i] = b[i] + a[i];
  }
}
)";
  KernelLangOptions Conservative;
  Conservative.FortranAliasing = false;
  KernelLangResult R = compileKernelLang(Src, Conservative);
  ASSERT_TRUE(R.ok());
  unsigned Loads = 0;
  for (const Instruction &I : R.Program->block(0))
    Loads += I.isLoad();
  // The store to b may alias a, so a[i] must be reloaded: more loads.
  EXPECT_GT(Loads, 2u);
}

TEST(FrontendTest, MultipleKernelsBecomeBlocks) {
  KernelLangResult R = compileKernelLang(R"(
kernel first(a) freq 5 { a[0] = 1.0; }
kernel second(b) freq 7 { b[0] = 2.0; }
)");
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R.Program->numBlocks(), 2u);
  EXPECT_DOUBLE_EQ(R.Program->block(0).frequency(), 5.0);
  EXPECT_DOUBLE_EQ(R.Program->block(1).frequency(), 7.0);
}

TEST(FrontendTest, CompiledKernelSurvivesThePipeline) {
  KernelLangResult R = compileKernelLang(R"(
kernel dot(x, y) freq 500 {
  s = 0.0;
  for i = 0 to 8 unroll 4 {
    s = s + x[i] * y[i];
  }
  out[0] = s;
}
)");
  ASSERT_TRUE(R.ok());
  PipelineConfig Config;
  Config.Policy = SchedulerPolicy::Balanced;
  CompiledFunction C = runPipeline(*R.Program, Config).value();
  EXPECT_TRUE(verifyClean(verifyFunction(C.Compiled)));
  EXPECT_GT(C.DynamicInstructions, 0.0);
}

//===----------------------------------------------------------------------===
// Diagnostics
//===----------------------------------------------------------------------===

TEST(FrontendDiagTest, RejectsNestedLoops) {
  KernelLangResult R = compileKernelLang(
      "kernel k(a) { for i = 0 to 4 { for j = 0 to 4 { a[i] = 1.0; } } }");
  EXPECT_FALSE(R.ok());
}

TEST(FrontendDiagTest, RejectsForeignSubscriptVariable) {
  KernelLangResult R = compileKernelLang(
      "kernel k(a) { for i = 0 to 4 { a[j] = 1.0; } }");
  EXPECT_FALSE(R.ok());
}

TEST(FrontendDiagTest, RejectsUninitializedScalar) {
  KernelLangResult R = compileKernelLang("kernel k(a) { a[0] = s + 1.0; }");
  EXPECT_FALSE(R.ok());
  ASSERT_FALSE(R.Diags.empty());
  EXPECT_NE(R.Diags[0].Message.find("before assignment"),
            std::string::npos);
}

TEST(FrontendDiagTest, RejectsBadBounds) {
  KernelLangResult R =
      compileKernelLang("kernel k(a) { for i = 4 to 4 { a[i] = 1.0; } }");
  EXPECT_FALSE(R.ok());
}

TEST(FrontendDiagTest, RejectsLoopVarSubscriptOutsideLoop) {
  KernelLangResult R = compileKernelLang("kernel k(a) { a[i] = 1.0; }");
  EXPECT_FALSE(R.ok());
}

TEST(FrontendDiagTest, MissingSemicolon) {
  KernelLangResult R = compileKernelLang("kernel k(a) { a[0] = 1.0 }");
  EXPECT_FALSE(R.ok());
}

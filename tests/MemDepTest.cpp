//===- tests/MemDepTest.cpp - Symbolic memory-dependence analysis ---------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// Covers the address analysis (analysis/AddressAnalysis.h), its
// load/store classification (analysis/MemDep.h), the DAG builder's
// symbolic pruning, and the memory-dependence certifier — including the
// injected-lying-facts negatives that pin BS730-BS734.
//
//===----------------------------------------------------------------------===//

#include "analysis/AddressAnalysis.h"
#include "analysis/MemDep.h"
#include "analysis/MemDepCertifier.h"
#include "dag/DagBuilder.h"
#include "ir/IrBuilder.h"

#include <gtest/gtest.h>

using namespace bsched;

namespace {

Reg vi(unsigned Id) { return Reg::makeVirtual(RegClass::Int, Id); }

Instruction storeAt(Reg Val, Reg Base, int64_t Off, AliasClassId C) {
  return Instruction::makeStore(Opcode::Store, Val, Base, Off, C);
}
Instruction loadAt(Reg Dst, Reg Base, int64_t Off, AliasClassId C) {
  return Instruction::makeLoad(Opcode::Load, Dst, Base, Off, C);
}

/// Steps \p AA over every instruction of \p BB, returning the address of
/// the memory instruction at \p Index (sampled pre-step, as the analyses
/// do).
SymbolicAddr addressAt(const BasicBlock &BB, unsigned Index) {
  AddressAnalysis AA;
  SymbolicAddr Result;
  for (unsigned I = 0; I != BB.size(); ++I) {
    if (I == Index)
      Result = AA.addressOf(BB[I]);
    AA.step(BB[I]);
  }
  return Result;
}

} // namespace

//===----------------------------------------------------------------------===
// AddressAnalysis: symbolic evaluation
//===----------------------------------------------------------------------===

TEST(AddressAnalysisTest, ConstantBasesFoldThroughRewrites) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 1000));                  // 0
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(1), vi(0), 24));
  BB.append(Instruction::makeUnary(Opcode::Move, vi(2), vi(1)));     // 2
  BB.append(loadAt(vi(3), vi(2), 8, 0));                             // 3
  SymbolicAddr A = addressAt(BB, 3);
  EXPECT_TRUE(A.isConstant());
  EXPECT_EQ(A.Offset, 1032);
}

TEST(AddressAnalysisTest, AffineChainSharesOrigin) {
  // Live-in base walked by += 8: both addresses hang off the same origin
  // at offsets 0 and 8. One analysis instance — origin numbering is
  // per-instance.
  BasicBlock BB("b");
  BB.append(loadAt(vi(1), vi(0), 0, 0));                             // 0
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(0), vi(0), 8));
  BB.append(loadAt(vi(2), vi(0), 0, 0));                             // 2
  AddressAnalysis AA;
  SymbolicAddr A = AA.addressOf(BB[0]);
  AA.step(BB[0]);
  AA.step(BB[1]);
  SymbolicAddr B = AA.addressOf(BB[2]);
  EXPECT_FALSE(A.isConstant());
  EXPECT_EQ(A.Origin, B.Origin);
  EXPECT_EQ(B.Offset - A.Offset, 8);
}

TEST(AddressAnalysisTest, SelfBaseLoadUsesPreDefAddress) {
  // load %i0, [%i0 + 8]: the address uses the *incoming* %i0, and the
  // loaded value is a fresh origin afterwards.
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 64));                    // 0
  BB.append(loadAt(vi(0), vi(0), 8, 0));                             // 1
  BB.append(loadAt(vi(1), vi(0), 0, 0));                             // 2
  SymbolicAddr A = addressAt(BB, 1);
  EXPECT_TRUE(A.isConstant());
  EXPECT_EQ(A.Offset, 72);
  SymbolicAddr B = addressAt(BB, 2);
  EXPECT_FALSE(B.isConstant()); // The loaded value is opaque.
}

TEST(AddressAnalysisTest, SameOriginDifferenceFoldsToConstant) {
  // %i2 = %i1 - %i0 where %i1 = %i0 + 40: the difference is the constant
  // 40, so [%i2 + 0] is an absolute address.
  BasicBlock BB("b");
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(1), vi(0), 40));
  BB.append(Instruction::makeBinary(Opcode::Sub, vi(2), vi(1), vi(0)));
  BB.append(loadAt(vi(3), vi(2), 2, 0));
  SymbolicAddr A = addressAt(BB, 2);
  EXPECT_TRUE(A.isConstant());
  EXPECT_EQ(A.Offset, 42);
}

TEST(AddressAnalysisTest, UnanalyzableDefsGetDistinctOrigins) {
  BasicBlock BB("b");
  BB.append(loadAt(vi(0), vi(9), 0, 0)); // Loaded values are opaque.
  BB.append(loadAt(vi(1), vi(9), 8, 0));
  BB.append(loadAt(vi(2), vi(0), 0, 0)); // 2: base = first loaded value.
  BB.append(loadAt(vi(3), vi(1), 0, 0)); // 3: base = second loaded value.
  SymbolicAddr A = addressAt(BB, 2);
  SymbolicAddr B = addressAt(BB, 3);
  EXPECT_FALSE(A.isConstant());
  EXPECT_FALSE(B.isConstant());
  EXPECT_NE(A.Origin, B.Origin);
}

//===----------------------------------------------------------------------===
// Classification and MemoryDependenceAnalysis
//===----------------------------------------------------------------------===

TEST(MemDepTest, ClassifyAddrs) {
  SymbolicAddr C1{0, 100}, C2{0, 108}, O1{5, 0}, O2{5, 8}, P{7, 0};
  EXPECT_EQ(classifyAddrs(C1, C1), AliasResult::MustAlias);
  EXPECT_EQ(classifyAddrs(C1, C2), AliasResult::NoAlias);
  EXPECT_EQ(classifyAddrs(O1, O2), AliasResult::NoAlias);
  EXPECT_EQ(classifyAddrs(O1, O1), AliasResult::MustAlias);
  EXPECT_EQ(classifyAddrs(O1, P), AliasResult::MayAlias);
  EXPECT_EQ(classifyAddrs(C1, O1), AliasResult::MayAlias);
}

TEST(MemDepTest, ClassifiesPairsAndDistances) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 4096));                  // 0
  BB.append(storeAt(vi(7), vi(0), 0, 0));                            // 1
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(0), vi(0), 8));
  BB.append(storeAt(vi(8), vi(0), 0, 0));                            // 3
  BB.append(loadAt(vi(1), vi(0), -8, 0));                            // 4
  BB.append(loadAt(vi(2), vi(0), 0, 1));                             // 5
  MemoryDependenceAnalysis MD(BB);
  EXPECT_TRUE(MD.isMemory(1));
  EXPECT_FALSE(MD.isMemory(2));
  EXPECT_EQ(MD.alias(1, 3), AliasResult::NoAlias);   // 4096 vs 4104.
  EXPECT_EQ(MD.alias(1, 4), AliasResult::MustAlias); // Both 4096.
  EXPECT_EQ(MD.alias(3, 5), AliasResult::NoAlias);   // Distinct classes.
  ASSERT_TRUE(MD.distance(1, 3).has_value());
  EXPECT_EQ(*MD.distance(1, 3), 8);
  EXPECT_FALSE(MD.distance(3, 5).has_value()); // Classes don't share space.
}

//===----------------------------------------------------------------------===
// Certifier: clean paths
//===----------------------------------------------------------------------===

namespace {

/// A block exercising pruning, must-alias chains, base rewrites, and an
/// opaque store.
BasicBlock trickyBlock() {
  BasicBlock BB("tricky");
  BB.append(Instruction::makeLoadImm(vi(0), 1 << 20));
  BB.append(loadAt(vi(1), vi(0), 0, 0));
  BB.append(storeAt(vi(1), vi(0), 8, 0));
  BB.append(Instruction::makeBinaryImm(Opcode::AddI, vi(0), vi(0), 8));
  BB.append(storeAt(vi(1), vi(0), 0, 0)); // Same word as the store above.
  BB.append(loadAt(vi(2), vi(1), 0, 0));  // Opaque base (loaded value).
  BB.append(storeAt(vi(2), vi(1), 4, 1)); // Other class.
  return BB;
}

} // namespace

TEST(MemDepCertifierTest, CertifiesBuiltDagsInBothModes) {
  BasicBlock BB = trickyBlock();
  for (bool Alias : {true, false})
    for (bool Disambiguate : {true, false}) {
      DagBuildOptions Options;
      Options.AliasAnalysis = Alias;
      Options.DisambiguateSameBase = Disambiguate;
      DepDag Dag = buildDag(BB, Options);
      std::vector<Diagnostic> Diags = certifyMemDep(BB, Dag, Options);
      EXPECT_TRUE(Diags.empty())
          << "alias=" << Alias << " disambiguate=" << Disambiguate << ": "
          << joinDiagnostics(Diags);
    }
}

//===----------------------------------------------------------------------===
// Certifier: negatives pinning BS730-BS734
//===----------------------------------------------------------------------===

namespace {

/// Injectable fact source returning one fixed answer for every pair.
struct ConstantFacts final : MemDepFacts {
  explicit ConstantFacts(AliasResult R) : Answer(R) {}
  AliasResult alias(unsigned, unsigned) const override { return Answer; }
  AliasResult Answer;
};

} // namespace

TEST(MemDepCertifierTest, ShapeMismatchIsBS730) {
  BasicBlock BB = trickyBlock();
  BasicBlock Other("other");
  Other.append(Instruction::makeLoadImm(vi(0), 1));
  DepDag Dag = buildDag(Other);
  std::vector<Diagnostic> Diags = certifyMemDep(BB, Dag, {});
  ASSERT_FALSE(Diags.empty());
  EXPECT_EQ(Diags.front().Code, DiagCode::CertifyMemDepShapeMismatch);
}

TEST(MemDepCertifierTest, MissingEdgeIsBS731) {
  // Two stores through unrelated bases may alias; a DAG with no edges at
  // all carries no ordering for them.
  BasicBlock BB("b");
  BB.append(storeAt(vi(7), vi(0), 0, 0));
  BB.append(storeAt(vi(8), vi(1), 0, 0));
  DepDag Bare(BB);
  std::vector<Diagnostic> Diags = certifyMemDep(BB, Bare, {});
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags.front().Code, DiagCode::CertifyMemDepMissingEdge);
  // The built DAG orders them and certifies cleanly.
  EXPECT_TRUE(certifyMemDep(BB, buildDag(BB), {}).empty());
}

TEST(MemDepCertifierTest, UnverifiableNoAliasClaimIsBS731) {
  // The fact source claims NoAlias for a pair whose addresses the
  // certifier cannot separate (and which differ concretely, so there is
  // no BS732): the omission is still unjustified.
  BasicBlock BB("b");
  BB.append(storeAt(vi(7), vi(0), 0, 0));
  BB.append(storeAt(vi(8), vi(1), 0, 0));
  DepDag Bare(BB);
  ConstantFacts Facts(AliasResult::NoAlias);
  std::vector<Diagnostic> Diags = certifyMemDepAgainst(BB, Bare, Facts);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags.front().Code, DiagCode::CertifyMemDepMissingEdge);
  EXPECT_NE(Diags.front().Message.find("unverifiable"), std::string::npos);
}

TEST(MemDepCertifierTest, FalseNoAliasIsBS732) {
  // Both stores write the same constant word; a NoAlias claim is refuted
  // by the concrete interpreter check.
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 4096));
  BB.append(storeAt(vi(7), vi(0), 0, 0));
  BB.append(storeAt(vi(8), vi(0), 0, 0));
  DepDag Bare(BB);
  ConstantFacts Facts(AliasResult::NoAlias);
  std::vector<Diagnostic> Diags = certifyMemDepAgainst(BB, Bare, Facts);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags.front().Code, DiagCode::CertifyMemDepFalseNoAlias);
}

TEST(MemDepCertifierTest, MalformedMemoryEdgeIsBS733) {
  BasicBlock BB("b");
  BB.append(Instruction::makeLoadImm(vi(0), 1));
  BB.append(Instruction::makeLoadImm(vi(1), 2));
  DepDag Dag(BB);
  Dag.addEdge(0, 1, DepKind::Memory); // Neither endpoint touches memory.
  std::vector<Diagnostic> Diags = certifyMemDep(BB, Dag, {});
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags.front().Code, DiagCode::CertifyMemDepMalformedEdge);
}

TEST(MemDepCertifierTest, FalseMustAliasIsBS734) {
  // The pair is ordered (so no BS731), but the claimed MustAlias is
  // refuted: the addresses provably differ by 8.
  BasicBlock BB("b");
  BB.append(storeAt(vi(7), vi(0), 0, 0));
  BB.append(storeAt(vi(8), vi(0), 8, 0));
  DepDag Dag(BB);
  Dag.addEdge(0, 1, DepKind::Memory);
  ConstantFacts Facts(AliasResult::MustAlias);
  std::vector<Diagnostic> Diags = certifyMemDepAgainst(BB, Dag, Facts);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags.front().Code, DiagCode::CertifyMemDepFalseMustAlias);
}

TEST(MemDepCertifierTest, RegisterPathDischargesObligation) {
  // A data dependence orders the pair just as hard as a memory edge: the
  // load feeds the stored value, so no memory edge is required even
  // though the accesses may alias.
  BasicBlock BB("b");
  BB.append(loadAt(vi(1), vi(0), 0, 0));
  BB.append(storeAt(vi(1), vi(2), 0, 0));
  DepDag Dag(BB);
  Dag.addEdge(0, 1, DepKind::Data);
  EXPECT_TRUE(certifyMemDep(BB, Dag, {}).empty());
}

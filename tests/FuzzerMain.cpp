//===- tests/FuzzerMain.cpp - Deterministic mutation/round-trip fuzzer ----==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// A seeded fuzz harness over the input-facing layers. Three modes, all
// driven from one support/Rng stream so every failure reproduces from
// (--seed, --iters):
//
//   roundtrip   generate a random straight-line kernel, then require
//               print -> parse -> verify -> interpret to reproduce the
//               original: identical reprint, identical memory image.
//   mutate      byte-mutate a valid printed kernel and feed it to the
//               parser. Any outcome is acceptable except a crash, a
//               sanitizer report, or an accepted function that fails
//               verification.
//   kernel-lang byte-mutate a valid frontend program and feed it to
//               compileKernelLang under the same rules.
//
// Exit code 0 = clean; 1 = a property violation (details on stderr).
// Registered in ctest under the label "fuzz-smoke"; intended to run under
// BSCHED_SANITIZE=address and =undefined builds.
//
// A fourth mode, never part of "all" (so the seed trio's draws stay
// stable), drives the chaos harness:
//
//   chaos       compile a random kernel under a random resource budget
//               with randomly armed fail points. Any outcome is
//               acceptable except a crash, a hang, a failure without a
//               structured BS80x/BS810 diagnostic, or two identical
//               compiles producing different outcomes.
//   memdep      differential oracle for memory-edge pruning: compile a
//               random (or mutated-and-reparsed) kernel with the symbolic
//               alias analysis on and off, and require both compiled
//               forms to reproduce the interpreter's memory image for the
//               original program exactly.
//
// Usage: fuzz_harness [--seed N] [--iters N]
//                     [--mode all|roundtrip|mutate|kernel-lang|chaos|memdep]
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "frontend/KernelLang.h"
#include "ir/Interpreter.h"
#include "ir/IrPrinter.h"
#include "ir/IrVerifier.h"
#include "parser/Parser.h"
#include "pipeline/Pipeline.h"
#include "support/FailPoint.h"
#include "support/Rng.h"
#include "workload/KernelGen.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>

using namespace bsched;

namespace {

//===----------------------------------------------------------------------===//
// Random-program generation
//===----------------------------------------------------------------------===//

/// Builds a random straight-line kernel out of the workload generator's
/// patterns. Always well-formed: generation goes through IrBuilder.
Function makeRandomFunction(Rng &R) {
  Function F("fuzz");
  BasicBlock &BB = F.addBlock("body", 1.0 + static_cast<double>(
                                                R.nextBounded(1000)));
  KernelContext Ctx(F, BB, /*FortranAliasing=*/R.nextBernoulli(0.5),
                    R.nextUInt64());
  unsigned NumPatterns = 1 + static_cast<unsigned>(R.nextBounded(3));
  for (unsigned P = 0; P != NumPatterns; ++P) {
    unsigned Iters = 1 + static_cast<unsigned>(R.nextBounded(4));
    switch (R.nextBounded(8)) {
    case 0:
      emitStencil1D(Ctx, "a", "b", 2 + R.nextBounded(3), Iters);
      break;
    case 1:
      emitStencil2D(Ctx, "g", "h", 4 + R.nextBounded(12), Iters);
      break;
    case 2:
      emitDotProduct(Ctx, "x", "y", "dot", Iters);
      break;
    case 3:
      emitInteraction(Ctx, "pos", "frc", Iters);
      break;
    case 4:
      emitGatherChase(Ctx, "idx", "dat", "acc", Iters);
      break;
    case 5:
      emitExprTree(Ctx, "leaf", "tree", 2 + R.nextBounded(8));
      break;
    case 6:
      emitRecurrence(Ctx, "co", "rec", 1 + R.nextBounded(6));
      break;
    default:
      emitScalarSoup(Ctx, "soup", 1 + R.nextBounded(4),
                     1 + R.nextBounded(4));
      break;
    }
  }
  if (R.nextBernoulli(0.5))
    Ctx.builder().emitRet();
  return F;
}

//===----------------------------------------------------------------------===//
// Mutation
//===----------------------------------------------------------------------===//

/// Characters the mutator may inject: the IR/kernel-lang alphabet plus
/// syntax-significant punctuation, so mutants stay near the grammar.
constexpr char MutationPool[] = "abcdefghijklmnopqrstuvwxyz"
                                "0123456789"
                                "%$@!#{}[]()+-*/=,.;<>_ \t\n";

std::string mutateText(std::string Text, Rng &R) {
  unsigned NumEdits = 1 + static_cast<unsigned>(R.nextBounded(8));
  for (unsigned E = 0; E != NumEdits && !Text.empty(); ++E) {
    size_t At = static_cast<size_t>(R.nextBounded(Text.size()));
    char C = MutationPool[R.nextBounded(sizeof(MutationPool) - 1)];
    switch (R.nextBounded(4)) {
    case 0: // Replace one byte.
      Text[At] = C;
      break;
    case 1: // Delete one byte.
      Text.erase(At, 1);
      break;
    case 2: // Insert one byte.
      Text.insert(At, 1, C);
      break;
    default: { // Duplicate a short chunk elsewhere (token-level chaos).
      size_t Len = 1 + static_cast<size_t>(R.nextBounded(16));
      Len = std::min(Len, Text.size() - At);
      std::string Chunk = Text.substr(At, Len);
      Text.insert(static_cast<size_t>(R.nextBounded(Text.size() + 1)),
                  Chunk);
      break;
    }
    }
  }
  return Text;
}

//===----------------------------------------------------------------------===//
// Properties
//===----------------------------------------------------------------------===//

unsigned Failures = 0;

void fail(uint64_t Iter, const char *Mode, const std::string &Detail,
          const std::string &Input) {
  ++Failures;
  std::fprintf(stderr, "FAIL iter %" PRIu64 " [%s]: %s\n", Iter, Mode,
               Detail.c_str());
  std::fprintf(stderr, "---- input ----\n%s\n---------------\n",
               Input.c_str());
}

/// Pushes an accepted function through the lints (crash-freedom; findings
/// are legitimate) and the certifying pipeline: every schedule must be a
/// dependence- and latency-respecting permutation and every allocation
/// must preserve def-use chains, or the iteration fails. Functions
/// carrying physical registers are skipped — the parser accepts them but
/// physical numbering belongs to the allocator.
void certifyCompile(uint64_t Iter, const char *Mode, const Function &F,
                    const std::string &Input) {
  for (const BasicBlock &BB : F)
    for (const Instruction &I : BB) {
      for (Reg S : I.sources())
        if (S.isValid() && !S.isVirtual())
          return;
      if (I.hasDest() && !I.dest().isVirtual())
        return;
    }
  lintFunction(F);
  ErrorOr<CompiledFunction> Compiled = runPipeline(F, PipelineConfig());
  if (!Compiled.has_value())
    fail(Iter, Mode,
         "certifying pipeline rejected an accepted program: " +
             Compiled.errorText(),
         Input);
}

/// print -> parse -> verify -> interpret must reproduce the generated
/// program exactly.
void runRoundTrip(uint64_t Iter, Rng &R) {
  Function Original = makeRandomFunction(R);
  std::string Printed = printFunction(Original);

  ErrorOr<Function> Reparsed = parseSingleFunction(Printed);
  if (!Reparsed) {
    fail(Iter, "roundtrip", "printed IR failed to reparse: " +
                                Reparsed.errorText(), Printed);
    return;
  }
  if (!verifyClean(verifyFunction(*Reparsed))) {
    fail(Iter, "roundtrip",
         "reparsed IR failed verification: " +
             joinDiagnostics(verifyFunction(*Reparsed)),
         Printed);
    return;
  }
  std::string Reprinted = printFunction(*Reparsed);
  if (Reprinted != Printed) {
    fail(Iter, "roundtrip", "reprint differs:\n" + Reprinted, Printed);
    return;
  }

  // Execution equivalence: same memory image and instruction count.
  Interpreter A, B;
  A.run(Original.block(0));
  B.run(Reparsed->block(0));
  if (A.instructionsExecuted() != B.instructionsExecuted()) {
    fail(Iter, "roundtrip", "instruction counts diverge", Printed);
    return;
  }
  if (A.memoryImage() != B.memoryImage()) {
    fail(Iter, "roundtrip", "memory images diverge after reparse", Printed);
    return;
  }

  certifyCompile(Iter, "roundtrip", Original, Printed);
}

/// Mutated IR text may be rejected, but must never crash the parser, and
/// anything accepted must verify cleanly (the parser runs the verifier).
void runMutate(uint64_t Iter, Rng &R) {
  std::string Mutant = mutateText(printFunction(makeRandomFunction(R)), R);
  ParseResult Result = parseIr(Mutant);
  if (!Result.ok())
    return; // Rejection with diagnostics is a pass.
  for (const Function &F : Result.Functions)
    if (!verifyClean(verifyFunction(F))) {
      fail(Iter, "mutate",
           "parser accepted a function that fails verification: " +
               joinDiagnostics(verifyFunction(F)),
           Mutant);
      return;
    }
  // Accepted programs must also print, interpret, and compile under full
  // certification without incident.
  for (const Function &F : Result.Functions) {
    printFunction(F);
    Interpreter I;
    for (const BasicBlock &BB : F)
      I.run(BB);
    certifyCompile(Iter, "mutate", F, Mutant);
  }
}

/// The frontend seed program the kernel-lang mutator perturbs.
const char *KernelLangSeed = R"(
kernel smooth(u, v) freq 2000 {
  for i = 0 to 32 unroll 4 {
    v[i] = 0.25*u[i-1] + 0.5*u[i] + 0.25*u[i+1];
  }
}

kernel dot(x, y) freq 1200 {
  s = 0.0;
  for i = 0 to 24 unroll 6 {
    s = s + x[i] * y[i];
  }
  result[0] = s;
}
)";

/// Mutated kernel-lang text may be rejected, but must never crash the
/// frontend, and an accepted program must verify cleanly.
void runKernelLang(uint64_t Iter, Rng &R) {
  std::string Mutant = mutateText(KernelLangSeed, R);
  KernelLangResult Result = compileKernelLang(Mutant);
  if (!Result.ok())
    return;
  if (!verifyClean(verifyFunction(*Result.Program))) {
    fail(Iter, "kernel-lang",
         "frontend accepted a program that fails verification: " +
             joinDiagnostics(verifyFunction(*Result.Program)),
         Mutant);
    return;
  }
  certifyCompile(Iter, "kernel-lang", *Result.Program, Mutant);
}

//===----------------------------------------------------------------------===//
// Chaos mode: budgets + injected faults
//===----------------------------------------------------------------------===//

/// Renders one chaos compile for bit-comparison: the degradation level and
/// printed program on success, the joined diagnostics on failure.
std::string chaosOutcome(const ErrorOr<CompiledFunction> &Result) {
  if (Result.has_value())
    return "ok:" + std::string(degradationName(Result->Degradation)) + "\n" +
           printFunction(Result->Compiled);
  return "err:" + joinDiagnostics(Result.errors());
}

/// Compiles a random kernel under a random resource budget with randomly
/// armed fail points. Three properties: no crash or hang, every
/// non-success is a structured BS80x/BS810 diagnostic, and the same
/// (kernel, budget, arming) compiled twice is bit-identical — outcome,
/// degradation level, and schedule.
void runChaos(uint64_t Iter, Rng &R) {
  Function F = makeRandomFunction(R);

  PipelineConfig Config;
  Config.Budget.Degrade = R.nextBernoulli(0.5);
  switch (R.nextBounded(4)) {
  case 0:
    break; // No budget: pure fault injection.
  case 1:
    Config.Budget.MaxTicks = 1 + R.nextBounded(2048);
    break;
  case 2:
    Config.Budget.MaxClosureBits = 1 + R.nextBounded(8192);
    break;
  default:
    Config.Budget.MaxInstructionsPerBlock = 1 + R.nextBounded(64);
    break;
  }

  FailPointRegistry &Registry = FailPointRegistry::instance();
  Registry.disableAll();
  if (FailPointRegistry::compiledIn() && R.nextBernoulli(0.75)) {
    const char *Sites[] = {failpoints::DagBuild,   failpoints::ClosureAlloc,
                           failpoints::Weighting,  failpoints::Scheduling,
                           failpoints::RegAlloc,   failpoints::Certify};
    for (const char *Site : Sites)
      if (R.nextBernoulli(0.3))
        Registry.enable(Site, 0.05 + 0.25 * R.nextDouble(), R.nextUInt64());
  }

  std::string Printed = printFunction(F);
  ErrorOr<CompiledFunction> A = runPipeline(F, Config);
  if (!A.has_value()) {
    if (A.errors().empty()) {
      fail(Iter, "chaos", "failure carried no diagnostics", Printed);
    } else {
      DiagCode Code = A.errors().front().Code;
      if (!isBudgetDiagCode(Code) && Code != DiagCode::InjectedFault)
        fail(Iter, "chaos",
             "non-structured failure under chaos: " + A.errorText(),
             Printed);
    }
  }
  ErrorOr<CompiledFunction> B = runPipeline(F, Config);
  if (chaosOutcome(A) != chaosOutcome(B))
    fail(Iter, "chaos", "chaos compile is not deterministic", Printed);
  Registry.disableAll();
}

//===----------------------------------------------------------------------===//
// Memdep mode: differential oracle for memory-edge pruning
//===----------------------------------------------------------------------===//

/// Compiles \p F with the symbolic alias analysis on (the paper default,
/// so every pruned edge is also audited by the memory-dependence
/// certificate) and off, and requires each compiled form to leave exactly
/// the interpreter's memory image for the original program, block by
/// block. Spill traffic is not program memory and is excluded.
void runMemDepDifferential(uint64_t Iter, const Function &F,
                           const std::string &Input) {
  for (bool Alias : {true, false}) {
    PipelineConfig Config;
    Config.DagOptions.AliasAnalysis = Alias;
    ErrorOr<CompiledFunction> Compiled = runPipeline(F, Config);
    const char *Which = Alias ? "memdep(alias on)" : "memdep(alias off)";
    if (!Compiled.has_value()) {
      fail(Iter, Which,
           "certifying pipeline rejected the kernel: " +
               Compiled.errorText(),
           Input);
      continue;
    }
    AliasClassId Spill =
        Compiled->Compiled.getOrCreateAliasClass(SpillAliasClassName);
    for (unsigned B = 0; B != F.numBlocks(); ++B) {
      Interpreter Before, After;
      Before.run(F.block(B));
      After.run(Compiled->Compiled.block(B));
      if (Before.memoryImage() != After.memoryImageExcluding(Spill)) {
        fail(Iter, Which,
             "memory images diverge in block " + std::to_string(B),
             Input);
        return;
      }
    }
  }
}

/// Even iterations run the oracle on a fresh random kernel; odd iterations
/// print one, byte-mutate it, and — when the mutant still parses with only
/// virtual registers — run the oracle on what the parser accepted.
void runMemDep(uint64_t Iter, Rng &R) {
  if (Iter % 2 == 0) {
    Function F = makeRandomFunction(R);
    runMemDepDifferential(Iter, F, printFunction(F));
    return;
  }
  std::string Mutant = mutateText(printFunction(makeRandomFunction(R)), R);
  ParseResult Result = parseIr(Mutant);
  if (!Result.ok())
    return; // Rejection with diagnostics is a pass.
  for (const Function &F : Result.Functions) {
    // Skip mutants with physical registers (numbering belongs to the
    // allocator) or live-in reads: the interpreter's deterministic
    // default for a register is keyed by its identity, so renaming a
    // live-in legitimately changes the program's result.
    bool Skip = false;
    for (const BasicBlock &BB : F) {
      std::set<uint32_t> Defined;
      for (const Instruction &I : BB) {
        for (Reg S : I.sources())
          Skip |= S.isValid() &&
                  (!S.isVirtual() || !Defined.count(S.rawBits()));
        if (I.hasDest()) {
          Skip |= !I.dest().isVirtual();
          Defined.insert(I.dest().rawBits());
        }
      }
    }
    if (!Skip)
      runMemDepDifferential(Iter, F, Mutant);
  }
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Seed = 0xB5C0FFEEULL;
  uint64_t Iters = 10000;
  std::string Mode = "all";
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--seed") == 0 && I + 1 < argc)
      Seed = std::strtoull(argv[++I], nullptr, 0);
    else if (std::strcmp(argv[I], "--iters") == 0 && I + 1 < argc)
      Iters = std::strtoull(argv[++I], nullptr, 0);
    else if (std::strcmp(argv[I], "--mode") == 0 && I + 1 < argc)
      Mode = argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: %s [--seed N] [--iters N] "
                   "[--mode all|roundtrip|mutate|kernel-lang|chaos|"
                   "memdep]\n",
                   argv[0]);
      return 2;
    }
  }

  Rng Root(Seed);
  for (uint64_t Iter = 0; Iter != Iters; ++Iter) {
    // Each iteration gets its own split stream, so a failure reproduces
    // with --iters <iter+1> without replaying unrelated draws.
    Rng R = Root.split(Iter);
    if (Mode == "roundtrip" || (Mode == "all" && Iter % 3 == 0))
      runRoundTrip(Iter, R);
    else if (Mode == "mutate" || (Mode == "all" && Iter % 3 == 1))
      runMutate(Iter, R);
    else if (Mode == "kernel-lang" || (Mode == "all" && Iter % 3 == 2))
      runKernelLang(Iter, R);
    else if (Mode == "chaos") // Explicit only: "all" stays the seed trio.
      runChaos(Iter, R);
    else if (Mode == "memdep") // Explicit only, like chaos.
      runMemDep(Iter, R);
    else {
      std::fprintf(stderr, "unknown mode '%s'\n", Mode.c_str());
      return 2;
    }
  }

  if (Failures != 0) {
    std::fprintf(stderr, "%u failure(s) over %" PRIu64 " iterations\n",
                 Failures, Iters);
    return 1;
  }
  std::printf("fuzz: %" PRIu64 " iterations clean (seed 0x%" PRIX64
              ", mode %s)\n",
              Iters, Seed, Mode.c_str());
  return 0;
}

//===- tests/AnalysisTest.cpp - Dataflow framework + lint tests -----------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"
#include "analysis/Lint.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace bsched;

namespace {

Function parse(const char *Source) {
  ParseResult Result = parseIr(Source);
  EXPECT_TRUE(Result.ok()) << "parse failed: "
                           << (Result.Diags.empty()
                                   ? "?"
                                   : Result.Diags.front().str());
  return std::move(Result.Functions.front());
}

unsigned countCode(const std::vector<Diagnostic> &Diags, DiagCode Code) {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    N += D.Code == Code;
  return N;
}

} // namespace

//===----------------------------------------------------------------------===
// Reaching definitions
//===----------------------------------------------------------------------===

TEST(DataflowTest, ReachingDefsTrackSourcesAndKills) {
  Function F = parse(R"(
func @f {
block body freq 1 {
  %i0 = li 1
  %i1 = addi %i0, 2
  %i0 = addi %i1, 3
  %i2 = add %i0, %i9
  ret
}
}
)");
  const BasicBlock &BB = F.block(0);
  ReachingDefsResult Defs = computeReachingDefs(BB);

  EXPECT_EQ(Defs.sourceDef(1, 0), 0);  // %i0 in instr 1 comes from instr 0.
  EXPECT_EQ(Defs.sourceDef(2, 0), 1);  // %i1 from instr 1.
  EXPECT_EQ(Defs.sourceDef(3, 0), 2);  // %i0 redefined by instr 2.
  EXPECT_EQ(Defs.sourceDef(3, 1), ReachingLiveIn); // %i9 is a live-in.
  EXPECT_EQ(Defs.KilledDef[2], 0);     // Instr 2 kills instr 0's %i0.
  EXPECT_EQ(Defs.KilledDef[0], ReachingLiveIn); // First defs kill nothing.
  EXPECT_EQ(Defs.KilledDef[1], ReachingLiveIn);
}

//===----------------------------------------------------------------------===
// Liveness
//===----------------------------------------------------------------------===

TEST(DataflowTest, LivenessLiveInAndLiveAfter) {
  Function F = parse(R"(
func @f {
block body freq 1 {
  %i1 = addi %i0, 1
  %i2 = add %i1, %i0
  store %i2, [%i9 + 0] !a
  ret
}
}
)");
  const BasicBlock &BB = F.block(0);
  LivenessResult Live = computeLiveness(BB);

  Reg I0 = Reg::makeVirtual(RegClass::Int, 0);
  Reg I1 = Reg::makeVirtual(RegClass::Int, 1);
  Reg I2 = Reg::makeVirtual(RegClass::Int, 2);
  Reg I9 = Reg::makeVirtual(RegClass::Int, 9);

  EXPECT_TRUE(Live.isLiveIn(I0));
  EXPECT_TRUE(Live.isLiveIn(I9));
  EXPECT_FALSE(Live.isLiveIn(I1));

  EXPECT_TRUE(Live.isLiveAfter(0, I0));  // %i0 read again by instr 1.
  EXPECT_TRUE(Live.isLiveAfter(0, I1));
  EXPECT_FALSE(Live.isLiveAfter(1, I1)); // Last read of %i1 was instr 1.
  EXPECT_TRUE(Live.isLiveAfter(1, I2));
  EXPECT_FALSE(Live.isLiveAfter(2, I2)); // Dead after the store.
}

TEST(DataflowTest, IdenticalInstructionDiscriminates) {
  Function F = parse(R"(
func @f {
block body freq 1 {
  %i0 = li 1
  %i0 = li 1
  %i0 = li 2
  %i1 = li 1
  ret
}
}
)");
  const BasicBlock &BB = F.block(0);
  EXPECT_TRUE(identicalInstruction(BB[0], BB[1]));
  EXPECT_FALSE(identicalInstruction(BB[0], BB[2])); // Different immediate.
  EXPECT_FALSE(identicalInstruction(BB[0], BB[3])); // Different dest.
  EXPECT_FALSE(identicalInstruction(BB[0], BB[4])); // li vs ret.
}

//===----------------------------------------------------------------------===
// Lint: use-before-def (BS700)
//===----------------------------------------------------------------------===

TEST(LintTest, ReportsLiveInReadsOncePerRegister) {
  Function F = parse(R"(
func @f {
block body freq 1 {
  %i1 = addi %i0, 1
  %i2 = add %i0, %i0
  store %i2, [%i1 + 0] !a
  ret
}
}
)");
  std::vector<Diagnostic> Diags = lintFunction(F);
  // %i0 is read three times but reported once, at its first use.
  EXPECT_EQ(countCode(Diags, DiagCode::LintUseBeforeDef), 1u);
}

TEST(LintTest, CleanSelfContainedBlockHasNoUseBeforeDef) {
  Function F = parse(R"(
func @f {
block body freq 1 {
  %i0 = li 8
  %i1 = addi %i0, 1
  store %i1, [%i0 + 0] !a
  ret
}
}
)");
  EXPECT_EQ(countCode(lintFunction(F), DiagCode::LintUseBeforeDef), 0u);
}

//===----------------------------------------------------------------------===
// Lint: dead values (BS701)
//===----------------------------------------------------------------------===

TEST(LintTest, ReportsDeadDefinitions) {
  Function F = parse(R"(
func @f {
block body freq 1 {
  %i0 = li 8
  %i1 = li 9
  %i2 = addi %i0, 1
  store %i2, [%i0 + 0] !a
  ret
}
}
)");
  std::vector<Diagnostic> Diags = lintFunction(F);
  ASSERT_EQ(countCode(Diags, DiagCode::LintDeadValue), 1u);
  // The finding names %i1 (never read); overwritten-then-read values and
  // stored values are not dead.
  for (const Diagnostic &D : Diags) {
    if (D.Code == DiagCode::LintDeadValue) {
      EXPECT_NE(D.Message.find("%i1"), std::string::npos) << D.Message;
    }
  }
}

TEST(LintTest, RedefinitionMakesEarlierDefDead) {
  Function F = parse(R"(
func @f {
block body freq 1 {
  %i0 = li 8
  %i0 = li 9
  store %i0, [%i0 + 0] !a
  ret
}
}
)");
  EXPECT_EQ(countCode(lintFunction(F), DiagCode::LintDeadValue), 1u);
}

//===----------------------------------------------------------------------===
// Lint: redundant loads (BS702)
//===----------------------------------------------------------------------===

TEST(LintTest, ReportsReloadOfSameLocation) {
  Function F = parse(R"(
func @f {
block body freq 1 {
  %i0 = li 4096
  %i1 = load [%i0 + 0] !a
  %i2 = load [%i0 + 0] !a
  %i3 = add %i1, %i2
  store %i3, [%i0 + 8] !b
  ret
}
}
)");
  EXPECT_EQ(countCode(lintFunction(F), DiagCode::LintRedundantLoad), 1u);
}

TEST(LintTest, InterveningStoreKillsAvailability) {
  Function F = parse(R"(
func @f {
block body freq 1 {
  %i0 = li 4096
  %i1 = load [%i0 + 0] !a
  store %i1, [%i0 + 0] !a
  %i2 = load [%i0 + 0] !a
  %i3 = add %i1, %i2
  store %i3, [%i0 + 8] !b
  ret
}
}
)");
  // The store to the same location forwards its value: the reload is still
  // redundant (it reads what was just stored).
  EXPECT_EQ(countCode(lintFunction(F), DiagCode::LintRedundantLoad), 1u);

  Function G = parse(R"(
func @g {
block body freq 1 {
  %i0 = li 4096
  %i9 = li 7
  %i1 = load [%i0 + 0] !a
  store %i9, [%i0 + 16] !a
  %i2 = load [%i0 + 0] !a
  %i3 = add %i1, %i2
  store %i3, [%i0 + 8] !b
  ret
}
}
)");
  // Same base, different offset: provably disjoint, so the first load is
  // still available and the reload redundant.
  EXPECT_EQ(countCode(lintFunction(G), DiagCode::LintRedundantLoad), 1u);
}

TEST(LintTest, AliasedStoreOrBaseRedefinitionSuppressesFinding) {
  Function F = parse(R"(
func @f {
block body freq 1 {
  %i0 = li 4096
  %i9 = li 7
  %i1 = load [%i0 + 0] !a
  store %i9, [%i9 + 16] !a
  %i2 = load [%i0 + 0] !a
  %i3 = add %i1, %i2
  store %i3, [%i0 + 8] !b
  ret
}
}
)");
  // The store goes through a different base in the same class: it may
  // alias the loaded location, so the reload is not flagged.
  EXPECT_EQ(countCode(lintFunction(F), DiagCode::LintRedundantLoad), 0u);

  Function G = parse(R"(
func @g {
block body freq 1 {
  %i0 = li 4096
  %i1 = load [%i0 + 0] !a
  %i0 = addi %i0, 8
  %i2 = load [%i0 + 0] !a
  %i3 = add %i1, %i2
  store %i3, [%i0 + 8] !b
  ret
}
}
)");
  // The base register was redefined between the loads: same textual
  // address, different value, no finding.
  EXPECT_EQ(countCode(lintFunction(G), DiagCode::LintRedundantLoad), 0u);
}

TEST(LintTest, OptionsDisableIndividualAnalyses) {
  Function F = parse(R"(
func @f {
block body freq 1 {
  %i1 = addi %i0, 1
  %i2 = load [%i0 + 0] !a
  %i3 = load [%i0 + 0] !a
  ret
}
}
)");
  LintOptions Options;
  Options.WarnUseBeforeDef = false;
  Options.WarnDeadValue = false;
  Options.WarnRedundantLoad = false;
  EXPECT_TRUE(lintFunction(F, Options).empty());

  Options.WarnRedundantLoad = true;
  std::vector<Diagnostic> Diags = lintFunction(F, Options);
  EXPECT_EQ(Diags.size(), countCode(Diags, DiagCode::LintRedundantLoad));
}

TEST(LintTest, FindingsAreWarnings) {
  Function F = parse(R"(
func @f {
block body freq 1 {
  %i1 = addi %i0, 1
  ret
}
}
)");
  for (const Diagnostic &D : lintFunction(F))
    EXPECT_EQ(D.Sev, Severity::Warning);
}

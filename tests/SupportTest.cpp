//===- tests/SupportTest.cpp - Unit tests for the support library --------===//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "support/UnionFind.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace bsched;

//===----------------------------------------------------------------------===
// UnionFind
//===----------------------------------------------------------------------===

TEST(UnionFindTest, StartsAsSingletons) {
  UnionFind UF(5);
  EXPECT_EQ(UF.size(), 5u);
  EXPECT_EQ(UF.numSets(), 5u);
  for (unsigned I = 0; I != 5; ++I)
    EXPECT_EQ(UF.find(I), I);
}

TEST(UnionFindTest, UniteMergesSets) {
  UnionFind UF(6);
  UF.unite(0, 1);
  UF.unite(2, 3);
  EXPECT_EQ(UF.numSets(), 4u);
  EXPECT_TRUE(UF.connected(0, 1));
  EXPECT_TRUE(UF.connected(2, 3));
  EXPECT_FALSE(UF.connected(1, 2));
  UF.unite(1, 2);
  EXPECT_TRUE(UF.connected(0, 3));
  EXPECT_EQ(UF.numSets(), 3u);
}

TEST(UnionFindTest, SelfUniteIsNoOp) {
  UnionFind UF(3);
  unsigned Root = UF.unite(1, 1);
  EXPECT_EQ(Root, 1u);
  EXPECT_EQ(UF.numSets(), 3u);
}

TEST(UnionFindTest, UniteReturnsStableRepresentative) {
  UnionFind UF(4);
  unsigned Root = UF.unite(0, 1);
  EXPECT_EQ(UF.find(0), Root);
  EXPECT_EQ(UF.find(1), Root);
  unsigned Root2 = UF.unite(Root, 2);
  EXPECT_EQ(UF.find(2), Root2);
  EXPECT_EQ(UF.find(0), Root2);
}

TEST(UnionFindTest, ResetRestoresSingletons) {
  UnionFind UF(4);
  UF.unite(0, 3);
  UF.reset(2);
  EXPECT_EQ(UF.size(), 2u);
  EXPECT_EQ(UF.numSets(), 2u);
  EXPECT_FALSE(UF.connected(0, 1));
}

TEST(UnionFindTest, LargeChainConnectsEverything) {
  constexpr unsigned N = 10000;
  UnionFind UF(N);
  for (unsigned I = 0; I + 1 != N; ++I)
    UF.unite(I, I + 1);
  EXPECT_EQ(UF.numSets(), 1u);
  EXPECT_TRUE(UF.connected(0, N - 1));
}

//===----------------------------------------------------------------------===
// Rng
//===----------------------------------------------------------------------===

TEST(RngTest, SameSeedSameStream) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.nextUInt64(), B.nextUInt64());
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng A(1), B(2);
  int Differences = 0;
  for (int I = 0; I != 16; ++I)
    Differences += A.nextUInt64() != B.nextUInt64();
  EXPECT_GT(Differences, 12);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RngTest, NextBoundedInRange) {
  Rng R(11);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.nextBounded(17), 17u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng R(3);
  for (int I = 0; I != 50; ++I) {
    EXPECT_FALSE(R.nextBernoulli(0.0));
    EXPECT_TRUE(R.nextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyNearP) {
  Rng R(99);
  int Hits = 0;
  constexpr int N = 100000;
  for (int I = 0; I != N; ++I)
    Hits += R.nextBernoulli(0.8);
  double Rate = static_cast<double>(Hits) / N;
  EXPECT_NEAR(Rate, 0.8, 0.01);
}

TEST(RngTest, GaussianMomentsNearStandardNormal) {
  Rng R(123);
  RunningStat S;
  for (int I = 0; I != 200000; ++I)
    S.add(R.nextGaussian());
  EXPECT_NEAR(S.mean(), 0.0, 0.02);
  EXPECT_NEAR(S.stddev(), 1.0, 0.02);
}

TEST(RngTest, SplitProducesIndependentStreams) {
  Rng Parent(5);
  Rng ChildA = Parent.split(1);
  Rng ChildB = Parent.split(2);
  int Same = 0;
  for (int I = 0; I != 16; ++I)
    Same += ChildA.nextUInt64() == ChildB.nextUInt64();
  EXPECT_LT(Same, 2);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng R(77);
  uint64_t First = R.nextUInt64();
  R.nextUInt64();
  R.reseed(77);
  EXPECT_EQ(R.nextUInt64(), First);
}

//===----------------------------------------------------------------------===
// Statistics
//===----------------------------------------------------------------------===

TEST(StatisticsTest, RunningStatMatchesClosedForm) {
  RunningStat S;
  for (double V : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(V);
  EXPECT_EQ(S.count(), 8u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  // Unbiased sample variance of the classic example is 32/7.
  EXPECT_NEAR(S.variance(), 32.0 / 7.0, 1e-12);
}

TEST(StatisticsTest, RunningStatEmptyAndSingle) {
  RunningStat S;
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.variance(), 0.0);
  S.add(3.5);
  EXPECT_DOUBLE_EQ(S.mean(), 3.5);
  EXPECT_EQ(S.variance(), 0.0);
}

TEST(StatisticsTest, VectorMeanAndStddev) {
  std::vector<double> V = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(V), 3.0);
  EXPECT_NEAR(stddev(V), std::sqrt(2.5), 1e-12);
  EXPECT_EQ(mean({}), 0.0);
}

TEST(StatisticsTest, QuantileInterpolates) {
  std::vector<double> V = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(V, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(V, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(V, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(quantile(V, 0.25), 17.5);
}

TEST(StatisticsTest, QuantileUnsortedInput) {
  std::vector<double> V = {40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(quantile(V, 0.5), 25.0);
}

TEST(StatisticsTest, PercentileMatchesQuantileOnSortedInput) {
  // percentile() is the no-copy flavor the loadgen uses on its sorted
  // latency arrays; on sorted data the two must agree exactly.
  std::vector<double> V = {10, 20, 30, 40};
  for (double P : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(percentile(V, P), quantile(V, P)) << P;
}

TEST(StatisticsTest, PercentileHardenedEdgeCases) {
  EXPECT_EQ(percentile({}, 0.5), 0.0);            // Empty: defined, not UB.
  EXPECT_EQ(percentile({7.0}, 0.0), 7.0);         // Single element...
  EXPECT_EQ(percentile({7.0}, 0.99), 7.0);        // ...at any P.
  std::vector<double> V = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(V, -0.5), 1.0);     // P clamps low...
  EXPECT_DOUBLE_EQ(percentile(V, 2.0), 2.0);      // ...and high.
}

TEST(StatisticsTest, IntervalContains) {
  Interval I{-1.5, 2.5};
  EXPECT_TRUE(I.contains(0.0));
  EXPECT_TRUE(I.contains(-1.5));
  EXPECT_TRUE(I.contains(2.5));
  EXPECT_FALSE(I.contains(3.0));
  EXPECT_DOUBLE_EQ(I.width(), 4.0);
}

//===----------------------------------------------------------------------===
// StringUtils
//===----------------------------------------------------------------------===

TEST(StringUtilsTest, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(StringUtilsTest, SplitKeepsEmptyPieces) {
  auto Pieces = split("a, b,, c", ',');
  ASSERT_EQ(Pieces.size(), 4u);
  EXPECT_EQ(Pieces[0], "a");
  EXPECT_EQ(Pieces[1], "b");
  EXPECT_EQ(Pieces[2], "");
  EXPECT_EQ(Pieces[3], "c");
}

TEST(StringUtilsTest, FormatDouble) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(StringUtilsTest, FormatTwelfthsMatchesPaperStyle) {
  // The values printed in the paper's Table 1.
  EXPECT_EQ(formatTwelfths(10.0), "10");
  EXPECT_EQ(formatTwelfths(1.25), "1 1/4");
  EXPECT_EQ(formatTwelfths(2.0 + 5.0 / 12.0), "2 5/12");
  EXPECT_EQ(formatTwelfths(2.0 + 11.0 / 12.0), "2 11/12");
  EXPECT_EQ(formatTwelfths(1.0 / 3.0), "1/3");
  EXPECT_EQ(formatTwelfths(0.0), "0");
}

TEST(StringUtilsTest, FormatTwelfthsFallsBackToDecimal) {
  EXPECT_EQ(formatTwelfths(0.1), "0.1000");
}

//===----------------------------------------------------------------------===
// Table
//===----------------------------------------------------------------------===

TEST(TableTest, AlignsColumns) {
  Table T;
  T.setHeader({"Name", "X"});
  T.addRow({"a", "1"});
  T.addRow({"longer", "23"});
  std::string S = T.toString();
  EXPECT_NE(S.find("Name"), std::string::npos);
  EXPECT_NE(S.find("longer"), std::string::npos);
  // Numeric column right-aligned: "1" lines up under "23"'s last digit.
  EXPECT_NE(S.find(" 1\n"), std::string::npos);
  EXPECT_EQ(T.numRows(), 2u);
}

TEST(TableTest, TitleAndSeparator) {
  Table T("My Title");
  T.setHeader({"A"});
  T.addRow({"1"});
  T.addSeparator();
  T.addRow({"2"});
  std::string S = T.toString();
  EXPECT_EQ(S.find("My Title"), 0u);
  EXPECT_NE(S.find("---"), std::string::npos);
}

TEST(TableTest, RowsShorterThanHeaderArePadded) {
  Table T;
  T.setHeader({"A", "B", "C"});
  T.addRow({"x"});
  EXPECT_NO_FATAL_FAILURE({ std::string S = T.toString(); });
}

//===----------------------------------------------------------------------===
// BitVector
//===----------------------------------------------------------------------===

#include "support/BitVector.h"

TEST(BitVectorTest, SetResetTest) {
  BitVector BV(130); // Crosses two word boundaries.
  EXPECT_EQ(BV.size(), 130u);
  EXPECT_FALSE(BV.any());
  BV.set(0);
  BV.set(63);
  BV.set(64);
  BV.set(129);
  EXPECT_TRUE(BV.test(0));
  EXPECT_TRUE(BV.test(63));
  EXPECT_TRUE(BV.test(64));
  EXPECT_TRUE(BV.test(129));
  EXPECT_FALSE(BV.test(1));
  EXPECT_EQ(BV.count(), 4u);
  BV.reset(63);
  EXPECT_FALSE(BV.test(63));
  EXPECT_EQ(BV.count(), 3u);
}

TEST(BitVectorTest, SetAllRespectsTail) {
  BitVector BV(70);
  BV.setAll();
  EXPECT_EQ(BV.count(), 70u); // No stray bits beyond the logical size.
  BV.clearAll();
  EXPECT_EQ(BV.count(), 0u);
  EXPECT_FALSE(BV.any());
}

TEST(BitVectorTest, SetOperations) {
  BitVector A(100), B(100);
  A.set(3);
  A.set(70);
  B.set(70);
  B.set(99);

  BitVector Or = A;
  Or |= B;
  EXPECT_EQ(Or.count(), 3u);

  BitVector And = A;
  And &= B;
  EXPECT_EQ(And.count(), 1u);
  EXPECT_TRUE(And.test(70));

  BitVector Diff = A;
  Diff.andNot(B);
  EXPECT_EQ(Diff.count(), 1u);
  EXPECT_TRUE(Diff.test(3));
}

TEST(BitVectorTest, ForEachSetBitAscending) {
  BitVector BV(200);
  for (unsigned I : {5u, 64u, 65u, 190u})
    BV.set(I);
  std::vector<unsigned> Seen;
  BV.forEachSetBit([&](unsigned I) { Seen.push_back(I); });
  EXPECT_EQ(Seen, (std::vector<unsigned>{5, 64, 65, 190}));
}

TEST(BitVectorTest, EqualityAndResize) {
  BitVector A(10), B(10);
  A.set(7);
  EXPECT_FALSE(A == B);
  B.set(7);
  EXPECT_TRUE(A == B);
  A.resize(20); // Resize clears.
  EXPECT_EQ(A.count(), 0u);
  EXPECT_EQ(A.size(), 20u);
}

//===----------------------------------------------------------------------===
// ThreadPool
//===----------------------------------------------------------------------===

#include "support/ThreadPool.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

TEST(ThreadPoolTest, ResolvesWorkerCount) {
  ThreadPool Serial(1);
  EXPECT_EQ(Serial.workerCount(), 1u);
  ThreadPool Four(4);
  EXPECT_EQ(Four.workerCount(), 4u);
  ThreadPool Default(0);
  EXPECT_GE(Default.workerCount(), 1u);
}

TEST(ThreadPoolTest, RunExecutesEveryTask) {
  ThreadPool Pool(4);
  std::atomic<unsigned> Count{0};
  for (unsigned I = 0; I != 64; ++I)
    Pool.run([&] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 64u);
}

TEST(ThreadPoolTest, ParallelForEachCoversEachIndexOnce) {
  for (unsigned Workers : {1u, 2u, 8u}) {
    ThreadPool Pool(Workers);
    std::vector<std::atomic<unsigned>> Touched(97);
    parallelForEach(Pool, Touched.size(),
                    [&](size_t Index) { ++Touched[Index]; });
    for (size_t I = 0; I != Touched.size(); ++I)
      EXPECT_EQ(Touched[I].load(), 1u) << "workers " << Workers << " index "
                                       << I;
  }
}

TEST(ThreadPoolTest, SingleWorkerRunsInlineInIndexOrder) {
  // The one-worker pool is the serial baseline: iterations run on the
  // calling thread, in order.
  ThreadPool Pool(1);
  std::thread::id Caller = std::this_thread::get_id();
  std::vector<size_t> Order;
  parallelForEach(Pool, 10, [&](size_t Index) {
    EXPECT_EQ(std::this_thread::get_id(), Caller);
    Order.push_back(Index);
  });
  std::vector<size_t> Expected{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(Order, Expected);
}

TEST(ThreadPoolTest, ParallelForEachHandlesEmptyRange) {
  ThreadPool Pool(4);
  bool Ran = false;
  parallelForEach(Pool, 0, [&](size_t) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST(ThreadPoolTest, DefaultWorkerCountHonorsEnvOverride) {
  ASSERT_EQ(setenv("BSCHED_JOBS", "5", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::defaultWorkerCount(), 5u);
  ASSERT_EQ(setenv("BSCHED_JOBS", "-2", 1), 0);
  EXPECT_GE(ThreadPool::defaultWorkerCount(), 1u); // Rejected: fallback.
  ASSERT_EQ(unsetenv("BSCHED_JOBS"), 0);
  EXPECT_GE(ThreadPool::defaultWorkerCount(), 1u);
}

//===----------------------------------------------------------------------===
// JsonWriter
//===----------------------------------------------------------------------===

TEST(JsonWriterTest, ObjectsArraysAndCommas) {
  JsonWriter W;
  W.beginObject();
  W.key("cells").value(8u);
  W.key("ok").value(true);
  W.key("rows").beginArray().value("a").value(2).endArray();
  W.key("nested").beginObject().key("x").value(-3).endObject();
  W.endObject();
  EXPECT_EQ(W.str(),
            R"({"cells":8,"ok":true,"rows":["a",2],"nested":{"x":-3}})");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter W;
  W.value(std::string_view("a\"b\\c\nd\te\x01"));
  EXPECT_EQ(W.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
  EXPECT_EQ(JsonWriter::escape("plain"), "\"plain\"");
}

TEST(JsonWriterTest, DoublesRoundTripShortest) {
  {
    JsonWriter W;
    W.value(0.1);
    EXPECT_EQ(W.str(), "0.1");
  }
  {
    JsonWriter W;
    W.value(1.0 / 3.0);
    double Back = std::stod(W.str());
    EXPECT_EQ(Back, 1.0 / 3.0);
  }
  {
    JsonWriter W;
    W.value(std::nan(""));
    EXPECT_EQ(W.str(), "null"); // JSON has no NaN literal.
  }
}

TEST(JsonWriterTest, ValueFixedAndRawValue) {
  JsonWriter W;
  W.beginObject();
  W.key("wall_ms").valueFixed(1.23456, 3);
  W.key("sub").rawValue(R"({"a":1})");
  W.endObject();
  EXPECT_EQ(W.str(), R"({"wall_ms":1.235,"sub":{"a":1}})");
}

TEST(JsonWriterTest, TopLevelScalar) {
  JsonWriter W;
  W.value(42);
  EXPECT_EQ(W.str(), "42");
}

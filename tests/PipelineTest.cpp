//===- tests/PipelineTest.cpp - Integration tests for the pipeline --------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// These are the end-to-end checks that the reproduction actually shows the
// paper's headline effects: balanced scheduling beats the traditional
// scheduler under latency uncertainty, gains grow with variance, and the
// whole compile pipeline preserves program semantics.
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"
#include "ir/IrVerifier.h"
#include "pipeline/Experiment.h"
#include "pipeline/Pipeline.h"
#include "workload/PerfectClub.h"

#include <gtest/gtest.h>

using namespace bsched;

namespace {

SimulationConfig quickSim(ProcessorModel P = ProcessorModel::unlimited()) {
  SimulationConfig C;
  C.Processor = P;
  C.NumRuns = 12; // Enough signal for tests; benches use the paper's 30.
  C.NumResamples = 60;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===
// runPipeline mechanics
//===----------------------------------------------------------------------===

TEST(PipelineTest, ProducesPhysicalCode) {
  Function F = buildBenchmark(Benchmark::FLO52Q);
  CompiledFunction C = runPipeline(F, {}).value();
  EXPECT_TRUE(verifyClean(verifyFunction(C.Compiled)));
  for (const BasicBlock &BB : C.Compiled)
    for (const Instruction &I : BB) {
      if (I.hasDest()) {
        EXPECT_TRUE(I.dest().isPhysical());
      }
      for (Reg Src : I.sources())
        EXPECT_TRUE(Src.isPhysical());
    }
}

TEST(PipelineTest, CountsAreConsistent) {
  Function F = buildBenchmark(Benchmark::QCD2);
  CompiledFunction C = runPipeline(F, {}).value();
  EXPECT_EQ(C.SpillPerBlock.size(), F.numBlocks());
  unsigned SumSpills = 0;
  for (unsigned S : C.SpillPerBlock)
    SumSpills += S;
  EXPECT_EQ(SumSpills, C.StaticSpills);
  EXPECT_EQ(C.StaticInstructions, C.Compiled.totalInstructions());
  EXPECT_GE(C.StaticInstructions, F.totalInstructions());
  EXPECT_GT(C.DynamicInstructions, 0.0);
}

TEST(PipelineTest, NoSchedulingPolicySkipsReordering) {
  Function F = buildBenchmark(Benchmark::TRACK);
  PipelineConfig Config;
  Config.Policy = SchedulerPolicy::NoScheduling;
  Config.RunRegAlloc = false;
  CompiledFunction C = runPipeline(F, Config).value();
  // Identical block contents (no RA, no reordering).
  for (unsigned B = 0; B != F.numBlocks(); ++B) {
    ASSERT_EQ(C.Compiled.block(B).size(), F.block(B).size());
    for (unsigned I = 0; I != F.block(B).size(); ++I)
      EXPECT_EQ(C.Compiled.block(B)[I].str(), F.block(B)[I].str());
  }
}

TEST(PipelineTest, QcdSpillsMoreThanFlo) {
  // The paper's Table 4 ordering: QCD2 is the most spill-heavy program,
  // FLO52Q the least.
  PipelineConfig Config;
  Config.Policy = SchedulerPolicy::Balanced;
  double Qcd = runPipeline(buildBenchmark(Benchmark::QCD2), Config)
                   .value()
                   .spillPercent();
  double Flo = runPipeline(buildBenchmark(Benchmark::FLO52Q), Config)
                   .value()
                   .spillPercent();
  EXPECT_GT(Qcd, Flo);
  EXPECT_GT(Qcd, 5.0);
}

//===----------------------------------------------------------------------===
// Pipeline preserves semantics end to end
//===----------------------------------------------------------------------===

class PipelineSemanticsTest : public ::testing::TestWithParam<Benchmark> {};

TEST_P(PipelineSemanticsTest, CompiledCodeComputesSameMemoryImage) {
  Function F = buildBenchmark(GetParam());
  for (SchedulerPolicy Policy :
       {SchedulerPolicy::Traditional, SchedulerPolicy::Balanced}) {
    PipelineConfig Config;
    Config.Policy = Policy;
    CompiledFunction C = runPipeline(F, Config).value();

    AliasClassId Spill =
        C.Compiled.getOrCreateAliasClass(SpillAliasClassName);
    for (unsigned B = 0; B != F.numBlocks(); ++B) {
      Interpreter Before, After;
      Before.run(F.block(B));
      After.run(C.Compiled.block(B));
      EXPECT_EQ(Before.memoryImage(), After.memoryImageExcluding(Spill))
          << benchmarkName(GetParam()) << " block " << B << " policy "
          << policyName(Policy);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, PipelineSemanticsTest,
                         ::testing::ValuesIn(allBenchmarks()),
                         [](const auto &Info) {
                           return benchmarkName(Info.param);
                         });

//===----------------------------------------------------------------------===
// The headline result
//===----------------------------------------------------------------------===

TEST(ExperimentTest, SimulateProgramAccounting) {
  Function F = buildBenchmark(Benchmark::MDG);
  CompiledFunction C = runPipeline(F, {}).value();
  CacheSystem Mem(0.8, 2, 10);
  ProgramSimResult Sim = runSimulation(C, Mem, quickSim()).value();
  EXPECT_EQ(Sim.BootstrapRuntimes.size(), 60u);
  EXPECT_GT(Sim.MeanRuntime, Sim.DynamicInstructions); // Some interlocks.
  EXPECT_GT(Sim.interlockPercent(), 0.0);
  EXPECT_LT(Sim.interlockPercent(), 100.0);
  EXPECT_NEAR(Sim.DynamicInstructions, C.DynamicInstructions, 1e-6);
}

TEST(ExperimentTest, SimulationIsDeterministic) {
  Function F = buildBenchmark(Benchmark::TRACK);
  CompiledFunction C = runPipeline(F, {}).value();
  NetworkSystem Mem(3, 2);
  ProgramSimResult A = runSimulation(C, Mem, quickSim()).value();
  ProgramSimResult B = runSimulation(C, Mem, quickSim()).value();
  EXPECT_EQ(A.BootstrapRuntimes, B.BootstrapRuntimes);
}

TEST(ExperimentTest, BalancedBeatsTraditionalOnMdgHighVariance) {
  // The paper's flagship data point (Table 2): MDG on N(2,5) improves by
  // ~21% under UNLIMITED. We assert a significant positive improvement.
  Function F = buildBenchmark(Benchmark::MDG);
  NetworkSystem Mem(2, 5);
  SchedulerComparison Cmp =
      runComparison(F, Mem, Mem.optimisticLatency(), quickSim()).value();
  EXPECT_GT(Cmp.Improvement.MeanPercent, 3.0);
  EXPECT_TRUE(Cmp.Improvement.significant());
}

TEST(ExperimentTest, ImprovementGrowsWithVariance) {
  // Table 2 trend: N(2,5) gains exceed N(2,2) gains.
  Function F = buildBenchmark(Benchmark::MDG);
  NetworkSystem LowVar(2, 2), HighVar(2, 5);
  SchedulerComparison Low = runComparison(F, LowVar, 2.0, quickSim()).value();
  SchedulerComparison High =
      runComparison(F, HighVar, 2.0, quickSim()).value();
  EXPECT_GT(High.Improvement.MeanPercent, Low.Improvement.MeanPercent);
}

TEST(ExperimentTest, ImprovementGrowsWithMissPenalty) {
  // Table 2 trend: L80(2,10) gains exceed L80(2,5) gains.
  Function F = buildBenchmark(Benchmark::ARC2D);
  CacheSystem SmallMiss(0.8, 2, 5), BigMiss(0.8, 2, 10);
  SchedulerComparison A =
      runComparison(F, SmallMiss, 2.0, quickSim()).value();
  SchedulerComparison B = runComparison(F, BigMiss, 2.0, quickSim()).value();
  EXPECT_GT(B.Improvement.MeanPercent, A.Improvement.MeanPercent);
}

TEST(ExperimentTest, RestrictedProcessorsStillImprove) {
  Function F = buildBenchmark(Benchmark::MDG);
  NetworkSystem Mem(3, 5);
  for (ProcessorModel P :
       {ProcessorModel::maxOutstanding(8), ProcessorModel::maxLength(8)}) {
    SchedulerComparison Cmp =
        runComparison(F, Mem, 3.0, quickSim(P)).value();
    EXPECT_GT(Cmp.Improvement.MeanPercent, 0.0) << P.name();
  }
}

TEST(ExperimentTest, AverageLlpNoBetterThanTraditional) {
  // The paper's section 3 negative result: averaging LLP over the block
  // gains little or nothing over the traditional scheduler.
  Function F = buildBenchmark(Benchmark::MDG);
  NetworkSystem Mem(2, 5);
  SchedulerComparison Balanced =
      runComparison(F, Mem, 2.0, quickSim(), SchedulerPolicy::Balanced)
          .value();
  SchedulerComparison Average =
      runComparison(F, Mem, 2.0, quickSim(), SchedulerPolicy::AverageLlp)
          .value();
  EXPECT_GT(Balanced.Improvement.MeanPercent,
            Average.Improvement.MeanPercent);
}

//===----------------------------------------------------------------------===
// Config presets, validation, and policy-name parsing
//===----------------------------------------------------------------------===

TEST(PipelineConfigTest, PaperDefaultIsTheDefaultConfig) {
  PipelineConfig Preset = PipelineConfig::paperDefault();
  PipelineConfig Default;
  EXPECT_EQ(Preset.Policy, Default.Policy);
  EXPECT_EQ(Preset.RunRegAlloc, Default.RunRegAlloc);
  EXPECT_EQ(Preset.SchedOptions.IssueWidth, Default.SchedOptions.IssueWidth);
  EXPECT_TRUE(Preset.validate().ok());
}

TEST(PipelineConfigTest, UnlimitedRegistersSkipsAllocation) {
  PipelineConfig Preset = PipelineConfig::unlimitedRegisters();
  EXPECT_FALSE(Preset.RunRegAlloc);
  EXPECT_TRUE(Preset.validate().ok());
  // The preset delivers what it promises: no spill code at all.
  Function F = buildBenchmark(Benchmark::QCD2);
  CompiledFunction C = runPipeline(F, Preset).value();
  EXPECT_EQ(C.StaticSpills, 0u);
}

TEST(PipelineConfigTest, SuperscalarSetsIssueWidth) {
  EXPECT_EQ(PipelineConfig::superscalar(4).SchedOptions.IssueWidth, 4u);
  EXPECT_TRUE(PipelineConfig::superscalar(4).validate().ok());
}

TEST(PipelineConfigTest, ValidateRejectsBadKnobs) {
  PipelineConfig Bad = PipelineConfig::superscalar(0);
  Status S = Bad.validate();
  EXPECT_FALSE(S.ok());
  ASSERT_FALSE(S.diagnostics().empty());
  EXPECT_EQ(S.diagnostics().front().Code, DiagCode::PipelineBadConfig);

  // runPipeline performs the same check and degrades instead of aborting.
  Function F = buildBenchmark(Benchmark::TRACK);
  ErrorOr<CompiledFunction> C = runPipeline(F, Bad);
  ASSERT_FALSE(C.has_value());
  EXPECT_EQ(C.errors().front().Code, DiagCode::PipelineBadConfig);
}

TEST(PipelineConfigTest, ParsePolicyNameRoundTripsEveryPolicy) {
  for (SchedulerPolicy P :
       {SchedulerPolicy::Traditional, SchedulerPolicy::Balanced,
        SchedulerPolicy::BalancedUnionFind, SchedulerPolicy::AverageLlp,
        SchedulerPolicy::NoScheduling}) {
    ErrorOr<SchedulerPolicy> Parsed = parsePolicyName(policyName(P));
    ASSERT_TRUE(Parsed.has_value()) << policyName(P);
    EXPECT_EQ(*Parsed, P);
  }
}

TEST(PipelineConfigTest, ParsePolicyNameTrimsWhitespace) {
  ErrorOr<SchedulerPolicy> Parsed = parsePolicyName("  balanced-uf\t");
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ(*Parsed, SchedulerPolicy::BalancedUnionFind);
}

TEST(PipelineConfigTest, ParsePolicyNameRejectsUnknownSpelling) {
  ErrorOr<SchedulerPolicy> Parsed = parsePolicyName("blanced");
  ASSERT_FALSE(Parsed.has_value());
  EXPECT_EQ(Parsed.errors().front().Code, DiagCode::PipelineUnknownPolicy);
  // The message teaches the accepted spellings.
  EXPECT_NE(Parsed.errorText().find("balanced"), std::string::npos);
  EXPECT_NE(Parsed.errorText().find("traditional"), std::string::npos);
}

//===- tests/PipelineTest.cpp - Integration tests for the pipeline --------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// These are the end-to-end checks that the reproduction actually shows the
// paper's headline effects: balanced scheduling beats the traditional
// scheduler under latency uncertainty, gains grow with variance, and the
// whole compile pipeline preserves program semantics.
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"
#include "ir/IrVerifier.h"
#include "pipeline/Experiment.h"
#include "pipeline/Pipeline.h"
#include "workload/PerfectClub.h"

#include <gtest/gtest.h>

using namespace bsched;

namespace {

SimulationConfig quickSim(ProcessorModel P = ProcessorModel::unlimited()) {
  SimulationConfig C;
  C.Processor = P;
  C.NumRuns = 12; // Enough signal for tests; benches use the paper's 30.
  C.NumResamples = 60;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===
// compilePipeline mechanics
//===----------------------------------------------------------------------===

TEST(PipelineTest, ProducesPhysicalCode) {
  Function F = buildBenchmark(Benchmark::FLO52Q);
  CompiledFunction C = compilePipeline(F, {});
  EXPECT_TRUE(verifyClean(verifyFunction(C.Compiled)));
  for (const BasicBlock &BB : C.Compiled)
    for (const Instruction &I : BB) {
      if (I.hasDest()) {
        EXPECT_TRUE(I.dest().isPhysical());
      }
      for (Reg Src : I.sources())
        EXPECT_TRUE(Src.isPhysical());
    }
}

TEST(PipelineTest, CountsAreConsistent) {
  Function F = buildBenchmark(Benchmark::QCD2);
  CompiledFunction C = compilePipeline(F, {});
  EXPECT_EQ(C.SpillPerBlock.size(), F.numBlocks());
  unsigned SumSpills = 0;
  for (unsigned S : C.SpillPerBlock)
    SumSpills += S;
  EXPECT_EQ(SumSpills, C.StaticSpills);
  EXPECT_EQ(C.StaticInstructions, C.Compiled.totalInstructions());
  EXPECT_GE(C.StaticInstructions, F.totalInstructions());
  EXPECT_GT(C.DynamicInstructions, 0.0);
}

TEST(PipelineTest, NoSchedulingPolicySkipsReordering) {
  Function F = buildBenchmark(Benchmark::TRACK);
  PipelineConfig Config;
  Config.Policy = SchedulerPolicy::NoScheduling;
  Config.RunRegAlloc = false;
  CompiledFunction C = compilePipeline(F, Config);
  // Identical block contents (no RA, no reordering).
  for (unsigned B = 0; B != F.numBlocks(); ++B) {
    ASSERT_EQ(C.Compiled.block(B).size(), F.block(B).size());
    for (unsigned I = 0; I != F.block(B).size(); ++I)
      EXPECT_EQ(C.Compiled.block(B)[I].str(), F.block(B)[I].str());
  }
}

TEST(PipelineTest, QcdSpillsMoreThanFlo) {
  // The paper's Table 4 ordering: QCD2 is the most spill-heavy program,
  // FLO52Q the least.
  PipelineConfig Config;
  Config.Policy = SchedulerPolicy::Balanced;
  double Qcd =
      compilePipeline(buildBenchmark(Benchmark::QCD2), Config).spillPercent();
  double Flo = compilePipeline(buildBenchmark(Benchmark::FLO52Q), Config)
                   .spillPercent();
  EXPECT_GT(Qcd, Flo);
  EXPECT_GT(Qcd, 5.0);
}

//===----------------------------------------------------------------------===
// Pipeline preserves semantics end to end
//===----------------------------------------------------------------------===

class PipelineSemanticsTest : public ::testing::TestWithParam<Benchmark> {};

TEST_P(PipelineSemanticsTest, CompiledCodeComputesSameMemoryImage) {
  Function F = buildBenchmark(GetParam());
  for (SchedulerPolicy Policy :
       {SchedulerPolicy::Traditional, SchedulerPolicy::Balanced}) {
    PipelineConfig Config;
    Config.Policy = Policy;
    CompiledFunction C = compilePipeline(F, Config);

    AliasClassId Spill =
        C.Compiled.getOrCreateAliasClass(SpillAliasClassName);
    for (unsigned B = 0; B != F.numBlocks(); ++B) {
      Interpreter Before, After;
      Before.run(F.block(B));
      After.run(C.Compiled.block(B));
      EXPECT_EQ(Before.memoryImage(), After.memoryImageExcluding(Spill))
          << benchmarkName(GetParam()) << " block " << B << " policy "
          << policyName(Policy);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, PipelineSemanticsTest,
                         ::testing::ValuesIn(allBenchmarks()),
                         [](const auto &Info) {
                           return benchmarkName(Info.param);
                         });

//===----------------------------------------------------------------------===
// The headline result
//===----------------------------------------------------------------------===

TEST(ExperimentTest, SimulateProgramAccounting) {
  Function F = buildBenchmark(Benchmark::MDG);
  CompiledFunction C = compilePipeline(F, {});
  CacheSystem Mem(0.8, 2, 10);
  ProgramSimResult Sim = simulateProgram(C, Mem, quickSim());
  EXPECT_EQ(Sim.BootstrapRuntimes.size(), 60u);
  EXPECT_GT(Sim.MeanRuntime, Sim.DynamicInstructions); // Some interlocks.
  EXPECT_GT(Sim.interlockPercent(), 0.0);
  EXPECT_LT(Sim.interlockPercent(), 100.0);
  EXPECT_NEAR(Sim.DynamicInstructions, C.DynamicInstructions, 1e-6);
}

TEST(ExperimentTest, SimulationIsDeterministic) {
  Function F = buildBenchmark(Benchmark::TRACK);
  CompiledFunction C = compilePipeline(F, {});
  NetworkSystem Mem(3, 2);
  ProgramSimResult A = simulateProgram(C, Mem, quickSim());
  ProgramSimResult B = simulateProgram(C, Mem, quickSim());
  EXPECT_EQ(A.BootstrapRuntimes, B.BootstrapRuntimes);
}

TEST(ExperimentTest, BalancedBeatsTraditionalOnMdgHighVariance) {
  // The paper's flagship data point (Table 2): MDG on N(2,5) improves by
  // ~21% under UNLIMITED. We assert a significant positive improvement.
  Function F = buildBenchmark(Benchmark::MDG);
  NetworkSystem Mem(2, 5);
  SchedulerComparison Cmp =
      compareSchedulers(F, Mem, Mem.optimisticLatency(), quickSim());
  EXPECT_GT(Cmp.Improvement.MeanPercent, 3.0);
  EXPECT_TRUE(Cmp.Improvement.significant());
}

TEST(ExperimentTest, ImprovementGrowsWithVariance) {
  // Table 2 trend: N(2,5) gains exceed N(2,2) gains.
  Function F = buildBenchmark(Benchmark::MDG);
  NetworkSystem LowVar(2, 2), HighVar(2, 5);
  SchedulerComparison Low =
      compareSchedulers(F, LowVar, 2.0, quickSim());
  SchedulerComparison High =
      compareSchedulers(F, HighVar, 2.0, quickSim());
  EXPECT_GT(High.Improvement.MeanPercent, Low.Improvement.MeanPercent);
}

TEST(ExperimentTest, ImprovementGrowsWithMissPenalty) {
  // Table 2 trend: L80(2,10) gains exceed L80(2,5) gains.
  Function F = buildBenchmark(Benchmark::ARC2D);
  CacheSystem SmallMiss(0.8, 2, 5), BigMiss(0.8, 2, 10);
  SchedulerComparison A = compareSchedulers(F, SmallMiss, 2.0, quickSim());
  SchedulerComparison B = compareSchedulers(F, BigMiss, 2.0, quickSim());
  EXPECT_GT(B.Improvement.MeanPercent, A.Improvement.MeanPercent);
}

TEST(ExperimentTest, RestrictedProcessorsStillImprove) {
  Function F = buildBenchmark(Benchmark::MDG);
  NetworkSystem Mem(3, 5);
  for (ProcessorModel P :
       {ProcessorModel::maxOutstanding(8), ProcessorModel::maxLength(8)}) {
    SchedulerComparison Cmp =
        compareSchedulers(F, Mem, 3.0, quickSim(P));
    EXPECT_GT(Cmp.Improvement.MeanPercent, 0.0) << P.name();
  }
}

TEST(ExperimentTest, AverageLlpNoBetterThanTraditional) {
  // The paper's section 3 negative result: averaging LLP over the block
  // gains little or nothing over the traditional scheduler.
  Function F = buildBenchmark(Benchmark::MDG);
  NetworkSystem Mem(2, 5);
  SchedulerComparison Balanced =
      compareSchedulers(F, Mem, 2.0, quickSim(), SchedulerPolicy::Balanced);
  SchedulerComparison Average = compareSchedulers(
      F, Mem, 2.0, quickSim(), SchedulerPolicy::AverageLlp);
  EXPECT_GT(Balanced.Improvement.MeanPercent,
            Average.Improvement.MeanPercent);
}

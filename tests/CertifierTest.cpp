//===- tests/CertifierTest.cpp - Translation-validation tests -------------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// Positive tests: every schedule and allocation the real passes produce
// certifies cleanly. Negative tests: hand-corrupted schedules and
// allocations are rejected with the documented BS code — the certifiers
// would catch a miscompiling scheduler or allocator, not just a crashed
// one.
//
//===----------------------------------------------------------------------===//

#include "analysis/AllocationCertifier.h"
#include "analysis/ScheduleCertifier.h"
#include "dag/DagBuilder.h"
#include "parser/Parser.h"
#include "pipeline/Pipeline.h"
#include "sched/BalancedWeighter.h"
#include "sched/TraditionalWeighter.h"
#include "workload/PerfectClub.h"

#include <gtest/gtest.h>

using namespace bsched;

namespace {

Function parse(const char *Source) {
  ParseResult Result = parseIr(Source);
  EXPECT_TRUE(Result.ok()) << "parse failed: "
                           << (Result.Diags.empty()
                                   ? "?"
                                   : Result.Diags.front().str());
  return std::move(Result.Functions.front());
}

bool hasCode(const std::vector<Diagnostic> &Diags, DiagCode Code) {
  for (const Diagnostic &D : Diags)
    if (D.Code == Code)
      return true;
  return false;
}

std::string codes(const std::vector<Diagnostic> &Diags) {
  std::string S;
  for (const Diagnostic &D : Diags)
    S += diagCodeString(D.Code) + ": " + D.Message + "\n";
  return S;
}

// A block with real dependence variety: RAW chains through loads, a WAR
// (the addi rewrites %i0 after the loads read it) and memory ordering
// (the store may alias the loads' class).
const char *ScheduleSource = R"(
func @f {
block body freq 1 {
  %i0 = li 4096
  %f0 = fload [%i0 + 0] !a
  %f1 = fload [%i0 + 8] !a
  %f2 = fadd %f0, %f1
  %i0 = addi %i0, 16
  %f3 = fload [%i0 + 0] !a
  %f4 = fmadd %f2, %f3, %f2
  fstore %f4, [%i0 + 8] !a
  ret
}
}
)";

struct Scheduled {
  Function F;
  DepDag Dag;
  Schedule Sched;

  explicit Scheduled(const char *Source, const Weighter &W,
                     SchedulerOptions Options = {})
      : F(parse(Source)), Dag(buildDag(F.block(0))) {
    W.assignWeights(Dag);
    Sched = scheduleDag(Dag, Options);
  }
};

} // namespace

//===----------------------------------------------------------------------===
// Schedule certification: positive
//===----------------------------------------------------------------------===

TEST(ScheduleCertifierTest, RealSchedulesCertify) {
  LatencyModel Ops;
  for (double Latency : {1.0, 2.0, 5.0}) {
    TraditionalWeighter W(Latency, Ops);
    Scheduled S(ScheduleSource, W);
    std::vector<Diagnostic> Diags =
        certifySchedule(S.F.block(0), S.Dag, S.Sched, Ops);
    EXPECT_TRUE(Diags.empty()) << codes(Diags);
  }
  BalancedWeighter BW;
  Scheduled S(ScheduleSource, BW);
  std::vector<Diagnostic> Diags =
      certifySchedule(S.F.block(0), S.Dag, S.Sched, Ops);
  EXPECT_TRUE(Diags.empty()) << codes(Diags);
}

TEST(ScheduleCertifierTest, SuperscalarAndMultiCycleFpCertify) {
  LatencyModel Ops = LatencyModel::withFpLatency(4.0);
  BalancedWeighter W(Ops);
  for (unsigned Width : {2u, 4u}) {
    SchedulerOptions Options;
    Options.IssueWidth = Width;
    Scheduled S(ScheduleSource, W, Options);
    std::vector<Diagnostic> Diags =
        certifySchedule(S.F.block(0), S.Dag, S.Sched, Ops, Options);
    EXPECT_TRUE(Diags.empty()) << codes(Diags);
  }
}

TEST(ScheduleCertifierTest, HandBuiltScheduleWithoutCyclesCertifies) {
  // Program order is always a valid order; without IssueCycle data only
  // the ordering obligations are checked.
  LatencyModel Ops;
  Function F = parse(ScheduleSource);
  DepDag Dag = buildDag(F.block(0));
  Schedule Sched;
  for (unsigned I = 0; I != Dag.size(); ++I)
    Sched.Order.push_back(I);
  std::vector<Diagnostic> Diags =
      certifySchedule(F.block(0), Dag, Sched, Ops);
  EXPECT_TRUE(Diags.empty()) << codes(Diags);
}

//===----------------------------------------------------------------------===
// Schedule certification: hand-corrupted schedules
//===----------------------------------------------------------------------===

TEST(ScheduleCertifierTest, SwappingDependentOpsIsRejected) {
  LatencyModel Ops;
  TraditionalWeighter W(2.0, Ops);
  Scheduled S(ScheduleSource, W);

  // Swap a data-dependent producer/consumer pair in the emitted order:
  // find an edge and exchange the two nodes' positions.
  std::vector<unsigned> Pos(S.Dag.size());
  for (unsigned P = 0; P != S.Sched.Order.size(); ++P)
    Pos[S.Sched.Order[P]] = P;
  unsigned From = 0, To = 0;
  for (unsigned N = 0; N != S.Dag.size() && From == To; ++N)
    for (const DepEdge &E : S.Dag.succs(N)) {
      From = N;
      To = E.Other;
      break;
    }
  ASSERT_NE(From, To);
  std::swap(S.Sched.Order[Pos[From]], S.Sched.Order[Pos[To]]);
  S.Sched.IssueCycle.clear(); // Isolate the ordering obligation.

  std::vector<Diagnostic> Diags =
      certifySchedule(S.F.block(0), S.Dag, S.Sched, Ops);
  EXPECT_TRUE(hasCode(Diags, DiagCode::CertifyDependenceViolated))
      << codes(Diags);
}

TEST(ScheduleCertifierTest, DuplicatedAndDroppedNodesAreRejected) {
  LatencyModel Ops;
  TraditionalWeighter W(2.0, Ops);
  Scheduled S(ScheduleSource, W);
  S.Sched.Order[0] = S.Sched.Order[1]; // Node emitted twice, one dropped.
  S.Sched.IssueCycle.clear();

  std::vector<Diagnostic> Diags =
      certifySchedule(S.F.block(0), S.Dag, S.Sched, Ops);
  EXPECT_TRUE(hasCode(Diags, DiagCode::CertifyNotPermutation))
      << codes(Diags);
}

TEST(ScheduleCertifierTest, TruncatedScheduleIsRejected) {
  LatencyModel Ops;
  TraditionalWeighter W(2.0, Ops);
  Scheduled S(ScheduleSource, W);
  S.Sched.Order.pop_back();
  S.Sched.IssueCycle.clear();

  std::vector<Diagnostic> Diags =
      certifySchedule(S.F.block(0), S.Dag, S.Sched, Ops);
  EXPECT_TRUE(hasCode(Diags, DiagCode::CertifyNotPermutation))
      << codes(Diags);
}

TEST(ScheduleCertifierTest, ShrunkLatencyGapIsRejected) {
  // %f0 = fload ... ; %f1 = fadd %f0, %f0 — the consumer must trail the
  // load by its weight (3 cycles under traditional(3)).
  LatencyModel Ops;
  TraditionalWeighter W(3.0, Ops);
  Scheduled S(R"(
func @f {
block body freq 1 {
  %f0 = fload [%i0 + 0] !a
  %f1 = fadd %f0, %f0
  fstore %f1, [%i0 + 8] !b
  ret
}
}
)",
              W);
  {
    std::vector<Diagnostic> Clean =
        certifySchedule(S.F.block(0), S.Dag, S.Sched, Ops);
    ASSERT_TRUE(Clean.empty()) << codes(Clean);
  }

  // Claim everything issues back-to-back: the fadd now trails the load by
  // 1 cycle instead of the 3 its weight demands.
  Schedule Corrupt = S.Sched;
  for (unsigned P = 0; P != Corrupt.Order.size(); ++P)
    Corrupt.IssueCycle[Corrupt.Order[P]] = P;
  Corrupt.NumVirtualNops = 0; // Keep the no-op cross-check consistent.

  std::vector<Diagnostic> Diags =
      certifySchedule(S.F.block(0), S.Dag, Corrupt, Ops);
  EXPECT_TRUE(hasCode(Diags, DiagCode::CertifyLatencyViolated))
      << codes(Diags);
}

TEST(ScheduleCertifierTest, OverfilledCycleIsRejected) {
  LatencyModel Ops;
  TraditionalWeighter W(2.0, Ops);
  Scheduled S(ScheduleSource, W);

  // Claim two independent instructions share a cycle on the width-1
  // machine: collapse the first two order positions onto one cycle.
  unsigned First = S.Sched.Order[0], Second = S.Sched.Order[1];
  S.Sched.IssueCycle[Second] = S.Sched.IssueCycle[First];

  std::vector<Diagnostic> Diags =
      certifySchedule(S.F.block(0), S.Dag, S.Sched, Ops);
  EXPECT_TRUE(hasCode(Diags, DiagCode::CertifyIssueWidthExceeded))
      << codes(Diags);
}

TEST(ScheduleCertifierTest, WrongNopCountIsRejected) {
  LatencyModel Ops;
  TraditionalWeighter W(5.0, Ops);
  Scheduled S(ScheduleSource, W);
  S.Sched.NumVirtualNops += 1;

  std::vector<Diagnostic> Diags =
      certifySchedule(S.F.block(0), S.Dag, S.Sched, Ops);
  EXPECT_TRUE(hasCode(Diags, DiagCode::CertifyScheduleMalformed))
      << codes(Diags);
}

TEST(ScheduleCertifierTest, DagBlockMismatchIsRejected) {
  LatencyModel Ops;
  TraditionalWeighter W(2.0, Ops);
  Scheduled S(ScheduleSource, W);

  // Certify against a different block than the DAG was built from.
  Function Other = parse(R"(
func @g {
block body freq 1 {
  %i0 = li 1
  %i1 = addi %i0, 2
  %i2 = add %i1, %i0
  %i3 = add %i2, %i1
  %i4 = add %i3, %i2
  %i5 = add %i4, %i3
  %i6 = add %i5, %i4
  %i7 = add %i6, %i5
  ret
}
}
)");
  std::vector<Diagnostic> Diags =
      certifySchedule(Other.block(0), S.Dag, S.Sched, Ops);
  EXPECT_TRUE(hasCode(Diags, DiagCode::CertifyScheduleMalformed))
      << codes(Diags);
}

//===----------------------------------------------------------------------===
// Allocation certification
//===----------------------------------------------------------------------===

namespace {

/// A program with enough simultaneously-live FP values to overflow a
/// shrunken register file, forcing spill stores and reloads.
std::string spillHeavySource(unsigned NumValues) {
  std::string S = "func @spill {\nblock body freq 1 {\n";
  S += "  %i0 = li 4096\n";
  for (unsigned I = 0; I != NumValues; ++I)
    S += "  %f" + std::to_string(I) + " = fload [%i0 + " +
         std::to_string(8 * I) + "] !a\n";
  // Sum in load order; every value stays live until consumed.
  S += "  %f" + std::to_string(NumValues) + " = fadd %f0, %f1\n";
  for (unsigned I = 2; I != NumValues; ++I)
    S += "  %f" + std::to_string(NumValues + I - 1) + " = fadd %f" +
         std::to_string(NumValues + I - 2) + ", %f" + std::to_string(I) +
         "\n";
  S += "  fstore %f" + std::to_string(2 * NumValues - 2) +
       ", [%i0 + 0] !b\n  ret\n}\n}\n";
  return S;
}

/// Small register files so ~12 live values spill.
TargetDescription tinyTarget() {
  TargetDescription T;
  T.NumIntRegs = 10;
  T.NumFpRegs = 8; // generalRegs(Fp) = 8 - 4 = 4.
  return T;
}

struct Allocated {
  Function F;
  BasicBlock Before;
  RegAllocResult Alloc;
  TargetDescription Target;
  AliasClassId SpillClass;

  explicit Allocated(const std::string &Source,
                     TargetDescription T = tinyTarget())
      : F(parse(Source.c_str())), Before(F.block(0)), Target(T) {
    Alloc = allocateRegisters(F, F.block(0), Target);
    SpillClass = F.getOrCreateAliasClass(SpillAliasClassName);
  }

  std::vector<Diagnostic> certify() const {
    return certifyAllocation(Before, F.block(0), Alloc, Target, SpillClass);
  }
};

} // namespace

TEST(AllocationCertifierTest, SpillHeavyAllocationCertifies) {
  Allocated A(spillHeavySource(12));
  EXPECT_GT(A.Alloc.SpillStores, 0u);
  EXPECT_GT(A.Alloc.SpillLoads, 0u);
  std::vector<Diagnostic> Diags = A.certify();
  EXPECT_TRUE(Diags.empty()) << codes(Diags);
}

TEST(AllocationCertifierTest, LiveInFunctionCertifies) {
  Allocated A(R"(
func @f {
block body freq 1 {
  %i1 = load [%i0 + 0] !a
  %i2 = add %i1, %i9
  store %i2, [%i0 + 8] !a
  ret
}
}
)");
  EXPECT_FALSE(A.Alloc.LiveInAssignment.empty());
  std::vector<Diagnostic> Diags = A.certify();
  EXPECT_TRUE(Diags.empty()) << codes(Diags);
}

TEST(AllocationCertifierTest, SwappedSourceRegisterIsRejected) {
  Allocated A(spillHeavySource(12));
  // Redirect one fadd input to a different (wrong) physical register.
  BasicBlock &BB = A.F.block(0);
  for (Instruction &I : BB) {
    if (I.opcode() != Opcode::FAdd)
      continue;
    Reg Old = I.source(0);
    unsigned WrongId = (Old.id() + 1) % A.Target.generalRegs(RegClass::Fp);
    I.setSource(0, Reg::makePhysical(RegClass::Fp, WrongId));
    break;
  }
  std::vector<Diagnostic> Diags = A.certify();
  EXPECT_TRUE(hasCode(Diags, DiagCode::CertifyAllocWrongValue))
      << codes(Diags);
}

TEST(AllocationCertifierTest, DroppedSpillStoreIsRejected) {
  Allocated A(spillHeavySource(12));
  BasicBlock &BB = A.F.block(0);
  std::vector<Instruction> Kept;
  bool Dropped = false;
  for (const Instruction &I : BB) {
    if (!Dropped && I.isStore() && I.aliasClass() == A.SpillClass) {
      Dropped = true; // Lose the first spill store.
      continue;
    }
    Kept.push_back(I);
  }
  ASSERT_TRUE(Dropped);
  BB.setInstructions(std::move(Kept));

  std::vector<Diagnostic> Diags = A.certify();
  // The reload of the never-stored slot is a bad spill; the count
  // mismatch also shows up as a shape error.
  EXPECT_TRUE(hasCode(Diags, DiagCode::CertifyAllocBadSpill))
      << codes(Diags);
  EXPECT_TRUE(hasCode(Diags, DiagCode::CertifyAllocShapeMismatch))
      << codes(Diags);
}

TEST(AllocationCertifierTest, DroppedSpillReloadIsRejected) {
  Allocated A(spillHeavySource(12));
  BasicBlock &BB = A.F.block(0);
  std::vector<Instruction> Kept;
  bool Dropped = false;
  for (const Instruction &I : BB) {
    if (!Dropped && I.isLoad() && I.aliasClass() == A.SpillClass) {
      Dropped = true; // Lose the first reload.
      continue;
    }
    Kept.push_back(I);
  }
  ASSERT_TRUE(Dropped);
  BB.setInstructions(std::move(Kept));

  std::vector<Diagnostic> Diags = A.certify();
  // Whoever read the reloaded register now reads a missing/stale value.
  EXPECT_TRUE(hasCode(Diags, DiagCode::CertifyAllocWrongValue))
      << codes(Diags);
}

TEST(AllocationCertifierTest, OutOfFileRegisterIsRejected) {
  Allocated A(spillHeavySource(12));
  BasicBlock &BB = A.F.block(0);
  for (Instruction &I : BB)
    if (I.hasDest() && I.dest().regClass() == RegClass::Fp) {
      I.setDest(Reg::makePhysical(RegClass::Fp, 99));
      break;
    }
  std::vector<Diagnostic> Diags = A.certify();
  EXPECT_TRUE(hasCode(Diags, DiagCode::CertifyAllocRegisterBound))
      << codes(Diags);
}

TEST(AllocationCertifierTest, FramePointerMisuseIsRejected) {
  Allocated A(R"(
func @f {
block body freq 1 {
  %i0 = li 8
  %i1 = addi %i0, 1
  store %i1, [%i0 + 0] !a
  ret
}
}
)");
  BasicBlock &BB = A.F.block(0);
  // Hand the reserved frame pointer to an ordinary instruction.
  for (Instruction &I : BB)
    if (I.opcode() == Opcode::AddI) {
      I.setDest(A.Target.framePointer());
      break;
    }
  std::vector<Diagnostic> Diags = A.certify();
  EXPECT_TRUE(hasCode(Diags, DiagCode::CertifyAllocRegisterBound))
      << codes(Diags);
}

TEST(AllocationCertifierTest, ChangedShapeIsRejected) {
  Allocated A(spillHeavySource(12));
  BasicBlock &BB = A.F.block(0);
  for (Instruction &I : BB)
    if (I.opcode() == Opcode::FAdd) {
      // Rebuild the instruction as fsub: same operands, different opcode.
      I = Instruction::makeBinary(Opcode::FSub, I.dest(), I.source(0),
                                  I.source(1));
      break;
    }
  std::vector<Diagnostic> Diags = A.certify();
  EXPECT_TRUE(hasCode(Diags, DiagCode::CertifyAllocShapeMismatch))
      << codes(Diags);
}

TEST(AllocationCertifierTest, DroppedInstructionIsRejected) {
  Allocated A(spillHeavySource(12));
  BasicBlock &BB = A.F.block(0);
  std::vector<Instruction> Kept;
  bool Dropped = false;
  for (const Instruction &I : BB) {
    if (!Dropped && I.opcode() == Opcode::FAdd) {
      Dropped = true; // Lose one program instruction.
      continue;
    }
    Kept.push_back(I);
  }
  ASSERT_TRUE(Dropped);
  BB.setInstructions(std::move(Kept));

  std::vector<Diagnostic> Diags = A.certify();
  EXPECT_TRUE(hasCode(Diags, DiagCode::CertifyAllocMissingInstruction))
      << codes(Diags);
}

TEST(AllocationCertifierTest, TamperedLiveInAssignmentIsRejected) {
  Allocated A(R"(
func @f {
block body freq 1 {
  %i1 = load [%i0 + 0] !a
  store %i1, [%i0 + 8] !a
  ret
}
}
)");
  ASSERT_FALSE(A.Alloc.LiveInAssignment.empty());
  A.Alloc.LiveInAssignment.clear();
  std::vector<Diagnostic> Diags = A.certify();
  EXPECT_TRUE(hasCode(Diags, DiagCode::CertifyAllocShapeMismatch))
      << codes(Diags);
}

//===----------------------------------------------------------------------===
// Pipeline integration
//===----------------------------------------------------------------------===

TEST(CertifiedPipelineTest, BenchmarksCompileWithCertificationOn) {
  for (Benchmark B : {Benchmark::FLO52Q, Benchmark::QCD2}) {
    Function F = buildBenchmark(B);
    PipelineConfig Config; // Certify defaults on.
    ASSERT_TRUE(Config.Certify);
    ErrorOr<CompiledFunction> C = runPipeline(F, Config);
    EXPECT_TRUE(C.has_value()) << C.errorText();
  }
}

TEST(CertifiedPipelineTest, CertifyOffStillCompiles) {
  Function F = buildBenchmark(Benchmark::TRACK);
  PipelineConfig On, Off;
  Off.Certify = false;
  CompiledFunction A = runPipeline(F, On).value();
  CompiledFunction B = runPipeline(F, Off).value();
  // Certification is observation only: identical output either way.
  ASSERT_EQ(A.Compiled.numBlocks(), B.Compiled.numBlocks());
  for (unsigned Blk = 0; Blk != A.Compiled.numBlocks(); ++Blk) {
    ASSERT_EQ(A.Compiled.block(Blk).size(), B.Compiled.block(Blk).size());
    for (unsigned I = 0; I != A.Compiled.block(Blk).size(); ++I)
      EXPECT_EQ(A.Compiled.block(Blk)[I].str(),
                B.Compiled.block(Blk)[I].str());
  }
}

TEST(CertifiedPipelineTest, RenamingAndSuperscalarCertify) {
  Function F = buildBenchmark(Benchmark::MDG);
  PipelineConfig Config = PipelineConfig::superscalar(2);
  Config.RenameAfterAllocation = true;
  ErrorOr<CompiledFunction> C = runPipeline(F, Config);
  EXPECT_TRUE(C.has_value()) << C.errorText();
}

//===- tests/SweepTest.cpp - Fault-isolated workload sweep tests ----------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// The per-kernel fault-isolation acceptance test: a sweep with one
// deliberately corrupted kernel must complete every remaining kernel and
// report the failure in a degraded-results summary.
//
//===----------------------------------------------------------------------===//

#include "pipeline/Sweep.h"

#include <gtest/gtest.h>

using namespace bsched;

namespace {

SimulationConfig smallSim() {
  SimulationConfig Sim;
  Sim.NumRuns = 3;
  Sim.NumResamples = 10;
  return Sim;
}

WorkloadOptions smallWorkload() {
  WorkloadOptions W;
  W.UnrollFactor = 1;
  return W;
}

/// Plants a branch to a nonexistent block in the entry block: a
/// structural corruption the parser can never produce but a buggy
/// producer could.
void corruptFunction(Function &F) {
  ASSERT_GE(F.numBlocks(), 1u);
  std::vector<Instruction> Instrs = F.block(0).instructions();
  Instrs.push_back(Instruction::makeJump(99));
  F.block(0).setInstructions(std::move(Instrs));
}

} // namespace

TEST(SweepTest, AllKernelsSucceedOnHealthyWorkload) {
  std::vector<SweepEntry> Entries = perfectClubSweepEntries(smallWorkload());
  ASSERT_EQ(Entries.size(), 8u);
  FixedSystem Memory(10);
  SweepResult R = runWorkloadSweep(Entries, Memory, smallSim());
  EXPECT_EQ(R.numSucceeded(), 8u);
  EXPECT_EQ(R.numFailed(), 0u);
  EXPECT_FALSE(R.degraded());
  EXPECT_EQ(R.summary(), "8 of 8 kernels succeeded");
  for (const SweepKernelOutcome &K : R.Kernels) {
    EXPECT_TRUE(K.ok());
    EXPECT_TRUE(K.firstError().empty());
    EXPECT_GT(K.Comparison->TraditionalSim.MeanRuntime, 0.0);
  }
}

TEST(SweepTest, CorruptedKernelIsIsolatedAndReported) {
  std::vector<SweepEntry> Entries = perfectClubSweepEntries(smallWorkload());
  ASSERT_EQ(Entries.size(), 8u);
  ASSERT_EQ(Entries[4].Name, "MDG");
  corruptFunction(Entries[4].Program);

  FixedSystem Memory(10);
  SweepResult R = runWorkloadSweep(Entries, Memory, smallSim());

  // The sweep finished: seven healthy kernels carry full comparisons.
  EXPECT_EQ(R.numSucceeded(), 7u);
  EXPECT_EQ(R.numFailed(), 1u);
  EXPECT_TRUE(R.degraded());
  for (const SweepKernelOutcome &K : R.Kernels) {
    if (K.Name == "MDG")
      continue;
    EXPECT_TRUE(K.ok()) << K.Name << ": " << K.firstError();
    EXPECT_GT(K.Comparison->TraditionalSim.MeanRuntime, 0.0);
  }

  // The corrupted kernel is recorded with its real cause, wrapped in the
  // per-kernel failure marker.
  const SweepKernelOutcome &Bad = R.Kernels[4];
  EXPECT_FALSE(Bad.ok());
  ASSERT_FALSE(Bad.Errors.empty());
  EXPECT_EQ(Bad.Errors.front().Code, DiagCode::SweepKernelFailed);
  bool SawVerifierError = false;
  for (const Diagnostic &D : Bad.Errors)
    SawVerifierError |= D.Code == DiagCode::VerifyBranchOutOfRange;
  EXPECT_TRUE(SawVerifierError);
  EXPECT_NE(Bad.firstError().find("error[BS"), std::string::npos);

  // The degraded-results summary names the failed kernel and why.
  std::string Summary = R.summary();
  EXPECT_NE(Summary.find("7 of 8 kernels succeeded"), std::string::npos)
      << Summary;
  EXPECT_NE(Summary.find("MDG"), std::string::npos) << Summary;
  EXPECT_NE(Summary.find("error[BS"), std::string::npos) << Summary;
}

TEST(SweepTest, BadSimulationConfigFailsEveryKernelWithoutAborting) {
  std::vector<SweepEntry> Entries = perfectClubSweepEntries(smallWorkload());
  FixedSystem Memory(10);
  SimulationConfig Sim = smallSim();
  Sim.NumRuns = 0; // Invalid: validateSimulationConfig rejects it.
  SweepResult R = runWorkloadSweep(Entries, Memory, Sim);
  EXPECT_EQ(R.numSucceeded(), 0u);
  EXPECT_EQ(R.numFailed(), 8u);
  EXPECT_TRUE(R.degraded());
  for (const SweepKernelOutcome &K : R.Kernels) {
    bool SawConfigError = false;
    for (const Diagnostic &D : K.Errors)
      SawConfigError |= D.Code == DiagCode::SimBadConfig;
    EXPECT_TRUE(SawConfigError) << K.Name;
  }
}

//===- tests/SchedTest.cpp - Unit tests for weighters & list scheduler ----==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// The paper's own worked examples are the primary fixtures: Figure 1
// (loads in series), Figure 4 (loads in parallel), and the Figure 7 /
// Table 1 contribution matrix.
//
//===----------------------------------------------------------------------===//

#include "dag/DagBuilder.h"
#include "ir/Interpreter.h"
#include "ir/IrBuilder.h"
#include "sched/AverageWeighter.h"
#include "sched/BalancedWeighter.h"
#include "sched/ListScheduler.h"
#include "sched/Schedule.h"
#include "sched/TraditionalWeighter.h"
#include "support/Rng.h"
#include "tests/TestDagHelpers.h"
#include "workload/HugeBlocks.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace bsched;
using bsched::fixtures::Figure7;

namespace {
Reg vi(unsigned Id) { return Reg::makeVirtual(RegClass::Int, Id); }
} // namespace

//===----------------------------------------------------------------------===
// TraditionalWeighter
//===----------------------------------------------------------------------===

TEST(TraditionalWeighterTest, AssignsFixedLoadWeight) {
  DepDag Dag = fixtures::makeFigure1Dag();
  TraditionalWeighter W(5.0);
  W.assignWeights(Dag);
  EXPECT_DOUBLE_EQ(Dag.weight(0), 5.0); // L0
  EXPECT_DOUBLE_EQ(Dag.weight(1), 5.0); // L1
  EXPECT_DOUBLE_EQ(Dag.weight(2), 1.0); // X0
  EXPECT_EQ(W.name(), "traditional(5.00)");
}

TEST(TraditionalWeighterTest, UsesLatencyModelForNonLoads) {
  DepDag Dag = fixtures::makeFigure1Dag();
  LatencyModel Model = LatencyModel::withFpLatency(3.0);
  Model.setOpLatency(Opcode::AddI, 2.0);
  TraditionalWeighter W(2.0, Model);
  W.assignWeights(Dag);
  EXPECT_DOUBLE_EQ(Dag.weight(2), 2.0); // X nodes are AddI in the fixture.
}

//===----------------------------------------------------------------------===
// BalancedWeighter: the paper's examples
//===----------------------------------------------------------------------===

TEST(BalancedWeighterTest, Figure1SeriesLoads) {
  // Section 3: "The weight on each load instruction is simply one plus
  // the number of issue slots that may be initiated independently of the
  // load divided by the number of loads in series, or 1 + (4/2) = 3."
  DepDag Dag = fixtures::makeFigure1Dag();
  BalancedWeighter().assignWeights(Dag);
  EXPECT_DOUBLE_EQ(Dag.weight(0), 3.0);
  EXPECT_DOUBLE_EQ(Dag.weight(1), 3.0);
  for (unsigned X = 2; X != 7; ++X)
    EXPECT_DOUBLE_EQ(Dag.weight(X), 1.0);
}

TEST(BalancedWeighterTest, Figure4ParallelLoads) {
  // The prose says weight 6 (1 + 5/1) counting the five X instructions;
  // Figure 6's algorithm also has each load contribute 1 issue slot to the
  // other parallel load (as Table 1 confirms loads do), giving 7. We pin
  // the algorithmic value; see DESIGN.md.
  DepDag Dag = fixtures::makeFigure4Dag();
  BalancedWeighter().assignWeights(Dag);
  EXPECT_DOUBLE_EQ(Dag.weight(0), 7.0);
  EXPECT_DOUBLE_EQ(Dag.weight(1), 7.0);
}

TEST(BalancedWeighterTest, Table1ContributionMatrix) {
  // The X1 walkthrough of section 3: three connected components; X1
  // contributes 1/1 to L1 and 1/3 to each of L3, L4, L5, L6; nothing to
  // L2 (its predecessor).
  DepDag Dag = fixtures::makeFigure7Dag();
  BalancedWeighter Weighter;
  BalancedWeighter::Breakdown BD = Weighter.computeBreakdown(Dag);

  const auto &FromX1 = BD.Contribution[Figure7::X1];
  EXPECT_DOUBLE_EQ(FromX1[Figure7::L1], 1.0);
  EXPECT_DOUBLE_EQ(FromX1[Figure7::L2], 0.0);
  EXPECT_NEAR(FromX1[Figure7::L3], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(FromX1[Figure7::L4], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(FromX1[Figure7::L5], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(FromX1[Figure7::L6], 1.0 / 3.0, 1e-12);
}

TEST(BalancedWeighterTest, Table1RowDetails) {
  DepDag Dag = fixtures::makeFigure7Dag();
  BalancedWeighter::Breakdown BD =
      BalancedWeighter().computeBreakdown(Dag);

  // L1 receives exactly 1 from every other instruction (it is independent
  // of everything and always alone in its component).
  for (unsigned I = 0; I != Dag.size(); ++I) {
    double Expected = I == Figure7::L1 ? 0.0 : 1.0;
    EXPECT_DOUBLE_EQ(BD.Contribution[I][Figure7::L1], Expected) << I;
  }

  // L1 contributes 1/4 to each of L2..L6 (one component, 4 loads in
  // series: L2 -> L3 -> L5 -> L6).
  for (unsigned L : {Figure7::L2, Figure7::L3, Figure7::L4, Figure7::L5,
                     Figure7::L6})
    EXPECT_NEAR(BD.Contribution[Figure7::L1][L], 0.25, 1e-12) << L;

  // L4's parallel partners: L5 and L6 each contribute a full slot to L4,
  // and L4 contributes 1/2 to each of them ({L5, L6} is one 2-load chain).
  EXPECT_DOUBLE_EQ(BD.Contribution[Figure7::L5][Figure7::L4], 1.0);
  EXPECT_DOUBLE_EQ(BD.Contribution[Figure7::L6][Figure7::L4], 1.0);
  EXPECT_DOUBLE_EQ(BD.Contribution[Figure7::L4][Figure7::L5], 0.5);
  EXPECT_DOUBLE_EQ(BD.Contribution[Figure7::L4][Figure7::L6], 0.5);
}

TEST(BalancedWeighterTest, Table1FinalWeights) {
  // Paper's printed totals: L1 = 10, L3 = 2 5/12, L4 = 4 5/12,
  // L5 = L6 = 2 11/12. (For L2 the algorithm forces 1 3/4 where the paper
  // prints 1 1/4 — see DESIGN.md on this figure erratum.)
  DepDag Dag = fixtures::makeFigure7Dag();
  BalancedWeighter().assignWeights(Dag);
  EXPECT_DOUBLE_EQ(Dag.weight(Figure7::L1), 10.0);
  EXPECT_NEAR(Dag.weight(Figure7::L2), 1.75, 1e-12);
  EXPECT_NEAR(Dag.weight(Figure7::L3), 2.0 + 5.0 / 12.0, 1e-12);
  EXPECT_NEAR(Dag.weight(Figure7::L4), 4.0 + 5.0 / 12.0, 1e-12);
  EXPECT_NEAR(Dag.weight(Figure7::L5), 2.0 + 11.0 / 12.0, 1e-12);
  EXPECT_NEAR(Dag.weight(Figure7::L6), 2.0 + 11.0 / 12.0, 1e-12);
}

TEST(BalancedWeighterTest, LoadsWithNoParallelismKeepWeightOne) {
  // A pure chain L -> X -> L -> X: nothing independent of anything.
  DepDag Dag = fixtures::makeFigureDag({true, false, true, false},
                                      {{0, 1}, {1, 2}, {2, 3}});
  BalancedWeighter().assignWeights(Dag);
  EXPECT_DOUBLE_EQ(Dag.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(Dag.weight(2), 1.0);
}

TEST(BalancedWeighterTest, IssueSlotsAreOnePerInstruction) {
  // A 4-cycle FMul still occupies one issue slot, so it contributes one
  // slot of hiding capacity to a parallel load; its own latency appears
  // as its producer weight instead.
  BasicBlock BB("b");
  Reg Base = Reg::makeVirtual(RegClass::Int, 0);
  BB.append(Instruction::makeLoad(Opcode::FLoad,
                                  Reg::makeVirtual(RegClass::Fp, 0), Base, 0,
                                  0));
  BB.append(Instruction::makeBinary(Opcode::FMul,
                                    Reg::makeVirtual(RegClass::Fp, 3),
                                    Reg::makeVirtual(RegClass::Fp, 1),
                                    Reg::makeVirtual(RegClass::Fp, 2)));
  DepDag Dag = buildDag(BB);
  ASSERT_EQ(Dag.numEdges(), 0u);
  BalancedWeighter W(LatencyModel::withFpLatency(4.0));
  W.assignWeights(Dag);
  EXPECT_DOUBLE_EQ(Dag.weight(0), 2.0); // 1 + 1/1.
  EXPECT_DOUBLE_EQ(Dag.weight(1), 4.0); // The FMul keeps its op latency.
}

TEST(BalancedWeighterTest, IssueWidthDividesContributions) {
  // Width-2 machine: each independent instruction hides half a cycle.
  DepDag Dag = fixtures::makeFigure1Dag();
  BalancedWeighter W(LatencyModel(), ChancesMethod::ExactLongestPath,
                     /*SlotsPerCycle=*/2.0);
  W.assignWeights(Dag);
  EXPECT_DOUBLE_EQ(Dag.weight(0), 2.0); // 1 + (4/2)/2.
  EXPECT_DOUBLE_EQ(Dag.weight(1), 2.0);
}

TEST(BalancedWeighterTest, UnionFindVariantMatchesExactOnLoadChains) {
  // When every node on the longest path is a load, levels count loads
  // exactly, so both methods agree.
  DepDag Exact = fixtures::makeFigure1Dag();
  DepDag Approx = fixtures::makeFigure1Dag();
  BalancedWeighter(LatencyModel(), ChancesMethod::ExactLongestPath)
      .assignWeights(Exact);
  BalancedWeighter(LatencyModel(), ChancesMethod::UnionFindLevels)
      .assignWeights(Approx);
  for (unsigned I = 0; I != Exact.size(); ++I)
    EXPECT_DOUBLE_EQ(Exact.weight(I), Approx.weight(I)) << I;
}

TEST(BalancedWeighterTest, UnionFindVariantNeverBelowExactChances) {
  // Mixed chain L -> X -> L: node-level path length is 3, but only 2
  // loads; the approximation clamps to the load count.
  DepDag Dag = fixtures::makeFigureDag({true, false, true, false},
                                      {{0, 1}, {1, 2}});
  // Node 3 is independent of the chain; its G_ind component is {0,1,2}.
  BalancedWeighter(LatencyModel(), ChancesMethod::UnionFindLevels)
      .assignWeights(Dag);
  // Chances clamped to 2 loads -> node 3 contributes 1/2 to each load.
  EXPECT_DOUBLE_EQ(Dag.weight(0), 1.5);
  EXPECT_DOUBLE_EQ(Dag.weight(2), 1.5);
}

TEST(BalancedWeighterTest, NameReportsMethod) {
  EXPECT_EQ(BalancedWeighter().name(), "balanced");
  EXPECT_EQ(BalancedWeighter(LatencyModel(), ChancesMethod::UnionFindLevels)
                .name(),
            "balanced-uf");
}

//===----------------------------------------------------------------------===
// AverageWeighter
//===----------------------------------------------------------------------===

TEST(AverageWeighterTest, AssignsBlockAverageToAllLoads) {
  DepDag Dag = fixtures::makeFigure7Dag();
  AverageWeighter().assignWeights(Dag);
  // Average of the balanced weights {10, 1.75, 2 5/12, 4 5/12, 2 11/12,
  // 2 11/12} = 24.5 / 6.
  double Expected = (10.0 + 1.75 + (2 + 5.0 / 12) + (4 + 5.0 / 12) +
                     2 * (2 + 11.0 / 12)) /
                    6.0;
  for (unsigned L : {Figure7::L1, Figure7::L2, Figure7::L3, Figure7::L4,
                     Figure7::L5, Figure7::L6})
    EXPECT_NEAR(Dag.weight(L), Expected, 1e-12);
}

TEST(AverageWeighterTest, NoLoadsIsNoOp) {
  DepDag Dag = fixtures::makeFigureDag({false, false}, {{0, 1}});
  AverageWeighter().assignWeights(Dag);
  EXPECT_DOUBLE_EQ(Dag.weight(0), 1.0);
}

//===----------------------------------------------------------------------===
// Priorities
//===----------------------------------------------------------------------===

TEST(PriorityTest, WeightPlusMaxSuccessor) {
  DepDag Dag = fixtures::makeFigure1Dag();
  TraditionalWeighter(5.0).assignWeights(Dag);
  std::vector<double> P = computePriorities(Dag);
  EXPECT_DOUBLE_EQ(P[6], 1.0);  // X4 leaf.
  EXPECT_DOUBLE_EQ(P[1], 6.0);  // L1 = 5 + X4's 1.
  EXPECT_DOUBLE_EQ(P[0], 11.0); // L0 = 5 + 6.
  EXPECT_DOUBLE_EQ(P[2], 1.0);  // X0 leaf.
}

TEST(PriorityTest, FractionalWeightsPropagate) {
  DepDag Dag = fixtures::makeFigure1Dag();
  BalancedWeighter().assignWeights(Dag);
  std::vector<double> P = computePriorities(Dag);
  EXPECT_DOUBLE_EQ(P[0], 7.0); // 3 + 3 + 1.
}

//===----------------------------------------------------------------------===
// ListScheduler: the paper's Figure 2 schedules
//===----------------------------------------------------------------------===

namespace {

/// Position of node \p N in \p Sched.
unsigned posOf(const Schedule &Sched, unsigned N) {
  auto It = std::find(Sched.Order.begin(), Sched.Order.end(), N);
  EXPECT_NE(It, Sched.Order.end());
  return static_cast<unsigned>(It - Sched.Order.begin());
}

} // namespace

TEST(ListSchedulerTest, Figure2aGreedySchedule) {
  // Traditional W=5 on Figure 1. The paper's top-down illustration is
  // L0 X0 X1 X2 X3 L1 X4 (all parallelism spent on L0's gap); our
  // bottom-up scheduler produces the mirror image L0 L1 X0 X1 X2 X3 X4
  // (all parallelism spent on L1's gap). Both are "greedy": one load
  // hoards every independent instruction and the other gets none, which
  // is what Figure 3's interlock analysis depends on.
  DepDag Dag = fixtures::makeFigure1Dag();
  TraditionalWeighter(5.0).assignWeights(Dag);
  Schedule Sched = scheduleDag(Dag);
  ASSERT_TRUE(isValidSchedule(Dag, Sched));
  EXPECT_EQ(Sched.Order,
            (std::vector<unsigned>{0, 1, 2, 3, 4, 5, 6}));
  // The unfilled L0->L1 gap shows up as virtual no-ops (5 - 1 slots).
  EXPECT_EQ(Sched.NumVirtualNops, 4u);
}

TEST(ListSchedulerTest, Figure2bLazySchedule) {
  // Traditional W=1: the loads are packed with no padding at all ("lazy"):
  // L0, L1 and X4 end up adjacent. (The paper's illustration places the
  // load cluster at the top; our bottom-up mirror places it at the end.)
  DepDag Dag = fixtures::makeFigure1Dag();
  TraditionalWeighter(1.0).assignWeights(Dag);
  Schedule Sched = scheduleDag(Dag);
  ASSERT_TRUE(isValidSchedule(Dag, Sched));
  EXPECT_EQ(posOf(Sched, 1), posOf(Sched, 0) + 1); // L1 right after L0.
  EXPECT_EQ(posOf(Sched, 6), posOf(Sched, 1) + 1); // X4 right after L1.
  EXPECT_EQ(Sched.NumVirtualNops, 0u);
}

TEST(ListSchedulerTest, Figure2cBalancedSchedule) {
  // Balanced (W=3 each): L0 X X L1 X X X4 — the gap is split evenly.
  DepDag Dag = fixtures::makeFigure1Dag();
  BalancedWeighter().assignWeights(Dag);
  Schedule Sched = scheduleDag(Dag);
  ASSERT_TRUE(isValidSchedule(Dag, Sched));
  EXPECT_EQ(Sched.Order[0], 0u);  // L0 first.
  EXPECT_EQ(posOf(Sched, 1), 3u); // L1 fourth: two X's after L0.
  EXPECT_EQ(posOf(Sched, 6), 6u); // X4 last: two X's after L1.
}

TEST(ListSchedulerTest, Figure5ParallelLoadsShareTheSchedule) {
  // Figure 5 shows L0 L1 X0..X4: the parallel loads issue back to back and
  // share the X instructions as padding. Our bottom-up scheduler emits the
  // mirror (X0..X4 L0 L1) — the loads are still adjacent and unpadded,
  // which is equivalent here because nothing in the block consumes them.
  DepDag Dag = fixtures::makeFigure4Dag();
  BalancedWeighter().assignWeights(Dag);
  Schedule Sched = scheduleDag(Dag);
  ASSERT_TRUE(isValidSchedule(Dag, Sched));
  unsigned PosL0 = posOf(Sched, 0), PosL1 = posOf(Sched, 1);
  EXPECT_EQ(PosL0 + 1, PosL1); // Loads adjacent, issued in program order.
  EXPECT_EQ(Sched.NumVirtualNops, 0u);
}

//===----------------------------------------------------------------------===
// ListScheduler: mechanics
//===----------------------------------------------------------------------===

TEST(ListSchedulerTest, EmptyDag) {
  BasicBlock BB("b");
  DepDag Dag(BB);
  Schedule Sched = scheduleDag(Dag);
  EXPECT_TRUE(Sched.Order.empty());
  EXPECT_TRUE(isValidSchedule(Dag, Sched));
}

TEST(ListSchedulerTest, SingleNode) {
  DepDag Dag = fixtures::makeFigureDag({true}, {});
  TraditionalWeighter(2.0).assignWeights(Dag);
  Schedule Sched = scheduleDag(Dag);
  EXPECT_EQ(Sched.Order, (std::vector<unsigned>{0}));
}

TEST(ListSchedulerTest, VirtualNopsOnStarvation) {
  // Load feeding its only consumer with nothing to fill the gap: the
  // deferred ready list starves and virtual no-ops are inserted.
  DepDag Dag = fixtures::makeFigureDag({true, false}, {{0, 1}});
  TraditionalWeighter(4.0).assignWeights(Dag);
  Schedule Sched = scheduleDag(Dag);
  EXPECT_EQ(Sched.Order, (std::vector<unsigned>{0, 1}));
  EXPECT_EQ(Sched.NumVirtualNops, 3u); // Gap of 4 minus the 1 real slot.
}

TEST(ListSchedulerTest, NoNopsWhenGapIsFilled) {
  DepDag Dag = fixtures::makeFigure1Dag();
  BalancedWeighter().assignWeights(Dag); // W = 3, two fillers per load.
  Schedule Sched = scheduleDag(Dag);
  EXPECT_EQ(Sched.NumVirtualNops, 0u);
}

TEST(ListSchedulerTest, DeterministicOutput) {
  DepDag Dag = fixtures::makeFigure7Dag();
  BalancedWeighter().assignWeights(Dag);
  Schedule A = scheduleDag(Dag);
  Schedule B = scheduleDag(Dag);
  EXPECT_EQ(A.Order, B.Order);
}

TEST(ListSchedulerTest, TieBreakPrefersEarliestGenerated) {
  // Three identical independent instructions: order preserved.
  DepDag Dag = fixtures::makeFigureDag({false, false, false}, {});
  TraditionalWeighter(2.0).assignWeights(Dag);
  Schedule Sched = scheduleDag(Dag);
  EXPECT_EQ(Sched.Order, (std::vector<unsigned>{0, 1, 2}));
}

TEST(ListSchedulerTest, IssueWidthTwoStillValid) {
  DepDag Dag = fixtures::makeFigure7Dag();
  BalancedWeighter().assignWeights(Dag);
  Schedule Sched = scheduleDag(Dag, {.IssueWidth = 2});
  EXPECT_TRUE(isValidSchedule(Dag, Sched));
}

TEST(ScheduleValidatorTest, RejectsBadOrders) {
  DepDag Dag = fixtures::makeFigureDag({false, false}, {{0, 1}});
  Schedule Wrong;
  Wrong.Order = {1, 0}; // Violates the edge.
  EXPECT_FALSE(isValidSchedule(Dag, Wrong));
  Wrong.Order = {0, 0}; // Duplicate.
  EXPECT_FALSE(isValidSchedule(Dag, Wrong));
  Wrong.Order = {0}; // Wrong size.
  EXPECT_FALSE(isValidSchedule(Dag, Wrong));
  Wrong.Order = {0, 5}; // Out of range.
  EXPECT_FALSE(isValidSchedule(Dag, Wrong));
}

TEST(ApplyScheduleTest, RewritesBlockAndKeepsTerminator) {
  Function F("f");
  BasicBlock &BB = F.addBlock("b");
  BB.append(Instruction::makeLoadImm(vi(0), 1));
  BB.append(Instruction::makeLoadImm(vi(1), 2));
  BB.append(Instruction::makeRet());
  DepDag Dag = buildDag(BB);
  Schedule Sched;
  Sched.Order = {1, 0};
  ASSERT_TRUE(isValidSchedule(Dag, Sched));
  applySchedule(BB, Dag, Sched);
  EXPECT_EQ(BB[0].imm(), 2);
  EXPECT_EQ(BB[1].imm(), 1);
  EXPECT_EQ(BB[2].opcode(), Opcode::Ret);
}

//===----------------------------------------------------------------------===
// Property tests: random programs
//===----------------------------------------------------------------------===

namespace {

/// Generates a random straight-line block: ALU ops over live registers,
/// loads and stores over a few alias classes.
BasicBlock makeRandomBlock(Rng &R, unsigned NumInstrs) {
  Function F("rand");
  BasicBlock &BB = F.addBlock("b");
  IrBuilder B(F, BB);

  std::vector<Reg> IntRegs{B.emitLoadImm(16), B.emitLoadImm(256)};
  std::vector<Reg> FpRegs{B.emitFLoadImm(1.5)};
  auto PickInt = [&] {
    return IntRegs[R.nextBounded(IntRegs.size())];
  };
  auto PickFp = [&] { return FpRegs[R.nextBounded(FpRegs.size())]; };

  for (unsigned I = 0; I != NumInstrs; ++I) {
    switch (R.nextBounded(8)) {
    case 0:
      IntRegs.push_back(B.emitLoad(PickInt(), R.nextBounded(4) * 8,
                                   static_cast<AliasClassId>(
                                       R.nextBounded(3))));
      break;
    case 1:
      FpRegs.push_back(B.emitFLoad(PickInt(), R.nextBounded(4) * 8,
                                   static_cast<AliasClassId>(
                                       R.nextBounded(3))));
      break;
    case 2:
      B.emitStore(PickInt(), PickInt(), R.nextBounded(4) * 8,
                  static_cast<AliasClassId>(R.nextBounded(3)));
      break;
    case 3:
      B.emitStore(PickFp(), PickInt(), R.nextBounded(4) * 8,
                  static_cast<AliasClassId>(R.nextBounded(3)));
      break;
    case 4:
      IntRegs.push_back(B.emitBinary(Opcode::Add, PickInt(), PickInt()));
      break;
    case 5:
      FpRegs.push_back(B.emitBinary(Opcode::FMul, PickFp(), PickFp()));
      break;
    case 6:
      IntRegs.push_back(B.emitBinaryImm(Opcode::AddI, PickInt(),
                                        R.nextBounded(64)));
      break;
    default:
      FpRegs.push_back(B.emitBinary(Opcode::FAdd, PickFp(), PickFp()));
      break;
    }
  }
  return BB;
}

/// All registers defined anywhere in the block.
std::vector<Reg> definedRegs(const BasicBlock &BB) {
  std::vector<Reg> Defs;
  for (const Instruction &I : BB)
    if (I.hasDest())
      Defs.push_back(I.dest());
  return Defs;
}

} // namespace

class SchedulerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedulerPropertyTest, SchedulingPreservesSemantics) {
  Rng R(GetParam());
  BasicBlock Original = makeRandomBlock(R, 40);
  DepDag Dag = buildDag(Original);

  for (bool Balanced : {false, true}) {
    if (Balanced)
      BalancedWeighter().assignWeights(Dag);
    else
      TraditionalWeighter(2.0).assignWeights(Dag);
    Schedule Sched = scheduleDag(Dag);
    ASSERT_TRUE(isValidSchedule(Dag, Sched));

    BasicBlock Rewritten = Original;
    applySchedule(Rewritten, Dag, Sched);

    Interpreter Before, After;
    Before.run(Original);
    After.run(Rewritten);
    EXPECT_EQ(Before.memoryImage(), After.memoryImage());
    for (Reg Def : definedRegs(Original)) {
      if (Def.regClass() == RegClass::Int)
        EXPECT_EQ(Before.getIntReg(Def), After.getIntReg(Def));
      else
        EXPECT_DOUBLE_EQ(Before.getFpReg(Def), After.getFpReg(Def));
    }
  }
}

TEST_P(SchedulerPropertyTest, BalancedWeightsAreSane) {
  Rng R(GetParam() ^ 0xABCDEF);
  BasicBlock BB = makeRandomBlock(R, 60);
  DepDag Dag = buildDag(BB);
  BalancedWeighter().assignWeights(Dag);

  unsigned N = Dag.size();
  for (unsigned I = 0; I != N; ++I) {
    if (!Dag.isLoad(I))
      continue;
    // Weight >= 1 (its own slot) and <= 1 + everything independent of it.
    EXPECT_GE(Dag.weight(I), 1.0);
    EXPECT_LE(Dag.weight(I), static_cast<double>(N));
  }
}

TEST_P(SchedulerPropertyTest, AverageEqualsMeanOfBalanced) {
  Rng R(GetParam() ^ 0x123456);
  BasicBlock BB = makeRandomBlock(R, 50);
  DepDag DagB = buildDag(BB);
  DepDag DagA = buildDag(BB);
  BalancedWeighter().assignWeights(DagB);
  AverageWeighter().assignWeights(DagA);

  double Sum = 0.0;
  unsigned NumLoads = 0;
  for (unsigned I = 0; I != DagB.size(); ++I) {
    if (!DagB.isLoad(I))
      continue;
    Sum += DagB.weight(I);
    ++NumLoads;
  }
  if (NumLoads == 0)
    return;
  double Mean = Sum / NumLoads;
  for (unsigned I = 0; I != DagA.size(); ++I) {
    if (DagA.isLoad(I)) {
      EXPECT_NEAR(DagA.weight(I), Mean, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SchedulerPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

//===----------------------------------------------------------------------===
// Ready-selection: heap vs. scan differential
//===----------------------------------------------------------------------===

namespace {

/// Both selection structures must emit the same schedule: the heap pops
/// the whole static tie group and arbitrates with the full Beats relation,
/// so it realizes exactly the scan's strict total order.
void expectHeapMatchesScan(const DepDag &Dag) {
  for (unsigned Width : {1u, 2u, 4u}) {
    SchedulerOptions Scan, Heap;
    Scan.IssueWidth = Heap.IssueWidth = Width;
    Scan.Selection = ReadySelection::Scan;
    Heap.Selection = ReadySelection::Heap;
    Schedule FromScan = scheduleDag(Dag, Scan);
    Schedule FromHeap = scheduleDag(Dag, Heap);
    ASSERT_EQ(FromScan.Order, FromHeap.Order)
        << "order drift at issue width " << Width;
    EXPECT_EQ(FromScan.IssueCycle, FromHeap.IssueCycle);
    EXPECT_EQ(FromScan.NumVirtualNops, FromHeap.NumVirtualNops);
  }
}

} // namespace

TEST(SchedTest, HeapSelectionMatchesScan) {
  // Pinned by ProtocolTest (the selection knob is key-neutral *because*
  // the schedules are identical). Random blocks under every weighter,
  // sized both below and above the Auto threshold; quantized traditional
  // weights maximize priority ties, balanced weights exercise the
  // fractional deferred keys.
  Rng R(0x5E1EC7);
  for (unsigned Trial = 0; Trial != 40; ++Trial) {
    unsigned N = 10 + static_cast<unsigned>(
                          R.nextBounded(Trial % 4 == 0 ? 400 : 80));
    BasicBlock BB = makeRandomBlock(R, N);
    for (bool Balanced : {false, true}) {
      DepDag Dag = buildDag(BB);
      if (Balanced)
        BalancedWeighter().assignWeights(Dag);
      else
        TraditionalWeighter(2.0).assignWeights(Dag);
      expectHeapMatchesScan(Dag);
      if (HasFailure())
        return;
    }
  }
}

TEST(SchedTest, HeapSelectionMatchesScanOnHugeBlock) {
  // The size regime Auto actually routes to the heap: a builder-produced
  // huge-family DAG with balanced weights.
  Function F = buildHugeBlock(2048);
  DepDag Dag = buildDag(F.block(0));
  BalancedWeighter(LatencyModel(), ChancesMethod::UnionFindLevels)
      .assignWeights(Dag);
  expectHeapMatchesScan(Dag);
  // And Auto at this size must agree with both explicit modes.
  SchedulerOptions Auto;
  Schedule FromAuto = scheduleDag(Dag, Auto);
  SchedulerOptions Scan;
  Scan.Selection = ReadySelection::Scan;
  EXPECT_EQ(FromAuto.Order, scheduleDag(Dag, Scan).Order);
}

//===- tests/ObsTest.cpp - Unit tests for the observability layer --------===//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the observability contracts of DESIGN.md §3g: merges across N
/// workers are exact, histogram bucket edges are upper-inclusive, trace
/// JSON is schema-valid and strictly nested per thread, and a
/// BSCHED_NO_OBS build compiles against the same API and returns empty
/// snapshots. Recording-dependent assertions are guarded so the suite
/// passes under both builds.
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Obs.h"
#include "obs/Trace.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <thread>

using namespace bsched;

namespace {

//===----------------------------------------------------------------------===
// A minimal JSON syntax checker — enough to assert the writer and the
// trace exporter emit well-formed documents without a JSON dependency.
//===----------------------------------------------------------------------===

struct JsonChecker {
  std::string_view Text;
  size_t Pos = 0;

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == Text.size();
  }

  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  bool string() {
    if (!consume('"'))
      return false;
    while (Pos < Text.size() && Text[Pos] != '"') {
      if (Text[Pos] == '\\') {
        ++Pos;
        if (Pos == Text.size())
          return false;
      }
      ++Pos;
    }
    return consume('"');
  }

  bool number() {
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    return Pos != Start;
  }

  bool value() {
    skipWs();
    if (Pos == Text.size())
      return false;
    switch (Text[Pos]) {
    case '{': {
      ++Pos;
      if (consume('}'))
        return true;
      do {
        skipWs();
        if (!string() || !consume(':') || !value())
          return false;
      } while (consume(','));
      return consume('}');
    }
    case '[': {
      ++Pos;
      if (consume(']'))
        return true;
      do {
        if (!value())
          return false;
      } while (consume(','));
      return consume(']');
    }
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }
};

bool isValidJson(std::string_view Text) { return JsonChecker{Text}.valid(); }

} // namespace

//===----------------------------------------------------------------------===
// MetricRegistry
//===----------------------------------------------------------------------===

TEST(ObsTest, EmptyRegistrySnapshots) {
  MetricRegistry Reg;
  MetricSnapshot Snap = Reg.snapshot();
  EXPECT_TRUE(Snap.empty());
  EXPECT_TRUE(isValidJson(Snap.toJson()));
}

TEST(ObsTest, HandlesAreInertWhenDefaultConstructed) {
  // Must not crash: the "observability off" path of every instrumented
  // call site.
  Counter C;
  Gauge G;
  Histogram H;
  C.add();
  C.add(7);
  G.set(3.5);
  H.record(12);
}

#ifndef BSCHED_NO_OBS

TEST(ObsTest, CounterAddsAndSnapshots) {
  MetricRegistry Reg;
  Counter C = Reg.counter("bsched.test.counter");
  C.add();
  C.add(9);
  MetricSnapshot Snap = Reg.snapshot();
  EXPECT_EQ(Snap.Counters.at("bsched.test.counter"), 10u);
  // Re-registration returns the same slot.
  Reg.counter("bsched.test.counter").add(5);
  EXPECT_EQ(Reg.snapshot().Counters.at("bsched.test.counter"), 15u);
}

TEST(ObsTest, GaugeReportsHighWaterMark) {
  MetricRegistry Reg;
  Gauge G = Reg.gauge("bsched.test.gauge");
  EXPECT_TRUE(Reg.snapshot().Gauges.empty()); // Registered but never set.
  G.set(4.0);
  G.set(2.5); // Last-set within one shard.
  EXPECT_EQ(Reg.snapshot().Gauges.at("bsched.test.gauge"), 2.5);
}

TEST(ObsTest, HistogramBucketEdgesAreUpperInclusive) {
  MetricRegistry Reg;
  Histogram H = Reg.histogram("bsched.test.hist", {2, 4, 8});
  H.record(0); // <= 2
  H.record(2); // == edge 2 lands in its bucket, not the next.
  H.record(3); // <= 4
  H.record(4); // == edge 4
  H.record(8); // == edge 8
  H.record(9); // overflow
  HistogramData Data = Reg.snapshot().Histograms.at("bsched.test.hist");
  ASSERT_EQ(Data.UpperEdges, (std::vector<uint64_t>{2, 4, 8}));
  ASSERT_EQ(Data.Counts.size(), 4u); // Edges + overflow.
  EXPECT_EQ(Data.Counts[0], 2u);
  EXPECT_EQ(Data.Counts[1], 2u);
  EXPECT_EQ(Data.Counts[2], 1u);
  EXPECT_EQ(Data.Counts[3], 1u);
  EXPECT_EQ(Data.Count, 6u);
  EXPECT_EQ(Data.Sum, 26u);
  EXPECT_EQ(Data.Min, 0u);
  EXPECT_EQ(Data.Max, 9u);
}

TEST(ObsTest, RegistryMergeAcrossWorkersIsExact) {
  // N workers hammer the same counter and histogram; the snapshot must
  // equal the serial total exactly, whatever the shard mapping.
  MetricRegistry Reg;
  Counter C = Reg.counter("bsched.test.parallel");
  Histogram H = Reg.histogram("bsched.test.parallel_hist", {10, 100});
  constexpr size_t Tasks = 64;
  constexpr uint64_t AddsPerTask = 1000;
  ThreadPool Pool(4);
  parallelForEach(Pool, Tasks, [&](size_t Index) {
    for (uint64_t I = 0; I != AddsPerTask; ++I)
      C.add();
    H.record(Index); // 0..63: 10 land <=10 (0..10 minus none missing).
  });
  MetricSnapshot Snap = Reg.snapshot();
  EXPECT_EQ(Snap.Counters.at("bsched.test.parallel"), Tasks * AddsPerTask);
  HistogramData Data = Snap.Histograms.at("bsched.test.parallel_hist");
  EXPECT_EQ(Data.Count, Tasks);
  EXPECT_EQ(Data.Counts[0], 11u); // Values 0..10.
  EXPECT_EQ(Data.Counts[1], 53u); // Values 11..63.
  EXPECT_EQ(Data.Counts[2], 0u);
  EXPECT_EQ(Data.Min, 0u);
  EXPECT_EQ(Data.Max, Tasks - 1);
  EXPECT_EQ(Data.Sum, Tasks * (Tasks - 1) / 2);
}

TEST(ObsTest, SnapshotMergeSemantics) {
  MetricRegistry A;
  A.counter("bsched.test.c").add(3);
  A.gauge("bsched.test.g").set(1.0);
  A.histogram("bsched.test.h", {5}).record(2);

  MetricRegistry B;
  B.counter("bsched.test.c").add(4);
  B.counter("bsched.test.only_b").add(1);
  B.gauge("bsched.test.g").set(7.5);
  B.histogram("bsched.test.h", {5}).record(9);

  MetricSnapshot Merged = A.snapshot();
  Merged.merge(B.snapshot());
  EXPECT_EQ(Merged.Counters.at("bsched.test.c"), 7u);       // Adds.
  EXPECT_EQ(Merged.Counters.at("bsched.test.only_b"), 1u);  // Union.
  EXPECT_EQ(Merged.Gauges.at("bsched.test.g"), 7.5);        // Max.
  HistogramData H = Merged.Histograms.at("bsched.test.h");
  EXPECT_EQ(H.Count, 2u);
  EXPECT_EQ(H.Counts[0], 1u);
  EXPECT_EQ(H.Counts[1], 1u);
  EXPECT_EQ(H.Min, 2u);
  EXPECT_EQ(H.Max, 9u);
}

TEST(ObsTest, MergeSnapshotIntoRegistryRoundTrips) {
  MetricRegistry Source;
  Source.counter("bsched.test.c").add(11);
  Source.gauge("bsched.test.g").set(2.0);
  Source.histogram("bsched.test.h", {1, 2}).record(1);
  MetricSnapshot Snap = Source.snapshot();

  MetricRegistry Target;
  Target.mergeSnapshot(Snap);
  Target.mergeSnapshot(Snap);
  MetricSnapshot Twice = Target.snapshot();
  EXPECT_EQ(Twice.Counters.at("bsched.test.c"), 22u);
  EXPECT_EQ(Twice.Gauges.at("bsched.test.g"), 2.0);
  EXPECT_EQ(Twice.Histograms.at("bsched.test.h").Count, 2u);

  // One fold reproduces the source exactly.
  MetricRegistry Clone;
  Clone.mergeSnapshot(Snap);
  EXPECT_EQ(Clone.snapshot(), Snap);
}

TEST(ObsTest, SnapshotJsonIsValidAndComplete) {
  MetricRegistry Reg;
  Reg.counter("bsched.test.c\"quoted\"").add(1);
  Reg.gauge("bsched.test.g").set(0.5);
  Reg.histogram("bsched.test.h", {3}).record(4);
  std::string Json = Reg.snapshot().toJson();
  EXPECT_TRUE(isValidJson(Json)) << Json;
  EXPECT_NE(Json.find("counters"), std::string::npos);
  EXPECT_NE(Json.find("gauges"), std::string::npos);
  EXPECT_NE(Json.find("histograms"), std::string::npos);
  EXPECT_NE(Json.find("\\\"quoted\\\""), std::string::npos);
}

//===----------------------------------------------------------------------===
// TraceRecorder / ScopedSpan
//===----------------------------------------------------------------------===

TEST(ObsTest, TraceJsonIsSchemaValid) {
  TraceRecorder Trace;
  {
    ScopedSpan Outer(&Trace, "outer", "phase");
    ScopedSpan Inner(&Trace, "inner", "phase", R"({"block":"b0"})");
  }
  std::string Json = Trace.toJson();
  EXPECT_TRUE(isValidJson(Json)) << Json;
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(Json.find(R"("args":{"block":"b0"})"), std::string::npos);

  std::vector<TraceEvent> Events = Trace.events();
  ASSERT_EQ(Events.size(), 2u);
  for (const TraceEvent &E : Events) {
    EXPECT_FALSE(E.Name.empty());
    EXPECT_STREQ(E.Cat, "phase");
  }
}

TEST(ObsTest, SpansNestStrictlyPerThread) {
  TraceRecorder Trace;
  ThreadPool Pool(4);
  parallelForEach(Pool, 16, [&](size_t Index) {
    ScopedSpan Outer(&Trace, "outer:" + std::to_string(Index));
    {
      ScopedSpan Mid(&Trace, "mid:" + std::to_string(Index));
      ScopedSpan Leaf(&Trace, "leaf:" + std::to_string(Index));
    }
    ScopedSpan Tail(&Trace, "tail:" + std::to_string(Index));
  });

  // RAII destruction order guarantees that on any one thread, spans form
  // a containment forest: two events either nest or are disjoint, never
  // partially overlapping.
  std::vector<TraceEvent> Events = Trace.events();
  EXPECT_EQ(Events.size(), 16u * 4);
  for (size_t I = 0; I != Events.size(); ++I) {
    for (size_t J = I + 1; J != Events.size(); ++J) {
      const TraceEvent &A = Events[I];
      const TraceEvent &B = Events[J];
      if (A.Tid != B.Tid)
        continue;
      uint64_t AEnd = A.TsUs + A.DurUs, BEnd = B.TsUs + B.DurUs;
      bool Disjoint = AEnd <= B.TsUs || BEnd <= A.TsUs;
      bool ANestsInB = A.TsUs >= B.TsUs && AEnd <= BEnd;
      bool BNestsInA = B.TsUs >= A.TsUs && BEnd <= AEnd;
      EXPECT_TRUE(Disjoint || ANestsInB || BNestsInA)
          << A.Name << " [" << A.TsUs << "," << AEnd << ") vs " << B.Name
          << " [" << B.TsUs << "," << BEnd << ") on tid " << A.Tid;
    }
  }
}

TEST(ObsTest, TopPhasesRanksByTotalTime) {
  TraceRecorder Trace;
  Trace.record({"slow", "phase", 0, 0, 500, ""});
  Trace.record({"fast", "phase", 0, 0, 10, ""});
  Trace.record({"slow", "phase", 1, 100, 300, ""});
  std::vector<PhaseTotal> Top = Trace.topPhases(5);
  ASSERT_EQ(Top.size(), 2u);
  EXPECT_EQ(Top[0].Name, "slow");
  EXPECT_EQ(Top[0].TotalUs, 800u);
  EXPECT_EQ(Top[0].Count, 2u);
  EXPECT_EQ(Top[1].Name, "fast");
  EXPECT_EQ(Trace.topPhases(1).size(), 1u);
}

TEST(ObsTest, TraceWriteFileRoundTrips) {
  TraceRecorder Trace;
  { ScopedSpan Span(&Trace, "phase-a"); }
  std::string Path = ::testing::TempDir() + "bsched_obs_trace_test.json";
  std::string Error;
  ASSERT_TRUE(Trace.writeFile(Path, &Error)) << Error;
  std::ifstream In(Path);
  std::string Contents((std::istreambuf_iterator<char>(In)),
                       std::istreambuf_iterator<char>());
  EXPECT_TRUE(isValidJson(Contents)) << Contents;
  EXPECT_NE(Contents.find("phase-a"), std::string::npos);
  std::remove(Path.c_str());

  EXPECT_FALSE(Trace.writeFile("/nonexistent-dir/trace.json", &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(ObsTest, GaugeMaxMergesAcrossShards) {
  // Two fresh threads get consecutive process-wide indices, so with a
  // generous shard count they land on different shards; the snapshot
  // must take the maximum across shards, not whichever shard was
  // written last.
  MetricRegistry Reg(64);
  Gauge G = Reg.gauge("bsched.test.high_water");
  std::thread([&] { G.set(5.0); }).join();
  std::thread([&] { G.set(3.0); }).join(); // Later in time, smaller.
  EXPECT_EQ(Reg.snapshot().Gauges.at("bsched.test.high_water"), 5.0);
}

TEST(ObsTest, HistogramOverflowBucketBoundary) {
  // The last named edge is upper-inclusive; one past it is overflow, and
  // the overflow bucket still tracks Min/Max for quantile clamping.
  MetricRegistry Reg;
  Histogram H = Reg.histogram("bsched.test.overflow", {100});
  H.record(100); // == last edge: named bucket.
  H.record(101); // one past: overflow.
  HistogramData Data = Reg.snapshot().Histograms.at("bsched.test.overflow");
  ASSERT_EQ(Data.Counts.size(), 2u);
  EXPECT_EQ(Data.Counts[0], 1u);
  EXPECT_EQ(Data.Counts[1], 1u);
  EXPECT_EQ(Data.Min, 100u);
  EXPECT_EQ(Data.Max, 101u);
  // The overflow bucket interpolates only up to the observed Max.
  EXPECT_LE(Data.estimateQuantile(1.0), 101.0);
}

#else // BSCHED_NO_OBS

TEST(ObsTest, NoObsBuildRecordsNothing) {
  // The whole API compiles and links; recording is a no-op and every
  // export comes back empty.
  MetricRegistry Reg;
  Reg.counter("bsched.test.c").add(5);
  Reg.gauge("bsched.test.g").set(1.0);
  Reg.histogram("bsched.test.h", {1, 2}).record(1);
  MetricSnapshot Snap = Reg.snapshot();
  EXPECT_TRUE(Snap.empty());

  MetricSnapshot Other;
  Other.Counters["bsched.test.external"] = 3;
  Reg.mergeSnapshot(Other);
  EXPECT_TRUE(Reg.snapshot().empty());

  TraceRecorder Trace;
  { ScopedSpan Span(&Trace, "phase"); }
  EXPECT_TRUE(Trace.events().empty());
  EXPECT_TRUE(isValidJson(Trace.toJson()));
}

#endif // BSCHED_NO_OBS

TEST(ObsTest, ObsContextDefaultsToNull) {
  ObsContext Obs;
  EXPECT_EQ(Obs.Metrics, nullptr);
  EXPECT_EQ(Obs.Trace, nullptr);
  EXPECT_TRUE(Obs.RequestId.empty());
}

//===----------------------------------------------------------------------===
// HistogramData::estimateQuantile and MetricSnapshot::toPrometheus are
// plain-data operations — they must behave identically in both builds,
// so these tests run unguarded on hand-built snapshots.
//===----------------------------------------------------------------------===

TEST(ObsTest, EstimateQuantileEmptyAndDegenerate) {
  HistogramData Empty;
  EXPECT_EQ(Empty.estimateQuantile(0.5), 0.0);

  // Every sample identical: any quantile clamps to that value even though
  // the bucket spans [Min, edge].
  HistogramData Same{{8}, {4, 0}, 4, 20, 5, 5};
  EXPECT_EQ(Same.estimateQuantile(0.0), 5.0);
  EXPECT_EQ(Same.estimateQuantile(0.5), 5.0);
  EXPECT_EQ(Same.estimateQuantile(1.0), 5.0);
}

TEST(ObsTest, EstimateQuantileInterpolatesWithinBuckets) {
  // 10 samples per bucket, uniformly: the estimator should agree with the
  // exact quantiles of a uniform distribution on the bucket spans.
  HistogramData Data{{10, 20, 30}, {10, 10, 10, 0}, 30, 0, 1, 30};
  EXPECT_DOUBLE_EQ(Data.estimateQuantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(Data.estimateQuantile(0.9), 27.0);
  EXPECT_DOUBLE_EQ(Data.estimateQuantile(1.0), 30.0);
  // Q=0 targets rank 1: interpolates from Min, never below it.
  EXPECT_GE(Data.estimateQuantile(0.0), 1.0);
  EXPECT_LE(Data.estimateQuantile(0.0), 10.0);
  // Out-of-range quantiles clamp instead of extrapolating.
  EXPECT_DOUBLE_EQ(Data.estimateQuantile(2.0), 30.0);
}

TEST(ObsTest, EstimateQuantileOverflowUsesObservedMax) {
  // Three of four samples overflowed the named edges; the overflow bucket
  // interpolates between the last edge and the observed Max, so the tail
  // estimate stays finite and within the data.
  HistogramData Data{{4}, {1, 3}, 4, 0, 2, 100};
  const double P99 = Data.estimateQuantile(0.99);
  EXPECT_GT(P99, 4.0);
  EXPECT_LE(P99, 100.0);
  EXPECT_NEAR(P99, 4.0 + 96.0 * ((0.99 * 4 - 1) / 3.0), 1e-9);
}

TEST(ObsTest, ToPrometheusGolden) {
  MetricSnapshot Snap;
  Snap.Counters["bsched.server.requests"] = 42;
  Snap.Gauges["bsched.engine.pool.high-water"] = 3.5;
  Snap.Histograms["bsched.server.latency_us.compile"] =
      HistogramData{{2, 4}, {1, 2, 1}, 4, 20, 1, 9};
  EXPECT_EQ(Snap.toPrometheus(),
            "# TYPE bsched_server_requests counter\n"
            "bsched_server_requests 42\n"
            "# TYPE bsched_engine_pool_high_water gauge\n"
            "bsched_engine_pool_high_water 3.5\n"
            "# TYPE bsched_server_latency_us_compile histogram\n"
            "bsched_server_latency_us_compile_bucket{le=\"2\"} 1\n"
            "bsched_server_latency_us_compile_bucket{le=\"4\"} 3\n"
            "bsched_server_latency_us_compile_bucket{le=\"+Inf\"} 4\n"
            "bsched_server_latency_us_compile_sum 20\n"
            "bsched_server_latency_us_compile_count 4\n");
}

TEST(ObsTest, ToPrometheusSanitizesHostileNames) {
  MetricSnapshot Snap;
  Snap.Counters["9lives total#1"] = 1;
  std::string Text = Snap.toPrometheus();
  EXPECT_NE(Text.find("_9lives_total_1 1\n"), std::string::npos) << Text;
}

//===- tests/ProtocolTest.cpp - Versioned request/config API tests --------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// The schema-v1 surface of the compile service (DESIGN.md §3j): the JSON
// document parser, the PipelineConfig round-trip (golden-pinned — a field
// added without a schema bump fails here), the request/response envelope,
// the shared CLI flag parser, and the compile-cache key coverage test
// that pins which PipelineConfig fields are (and are not) part of a
// compilation's identity.
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"
#include "pipeline/CompileCache.h"
#include "pipeline/Pipeline.h"
#include "server/Protocol.h"
#include "support/CliOptions.h"
#include "support/JsonValue.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace bsched;

namespace {

//===----------------------------------------------------------------------===//
// JsonValue: the read side of the JSON story.
//===----------------------------------------------------------------------===//

TEST(JsonValueTest, ParsesScalarsAndContainers) {
  ErrorOr<JsonValue> Doc =
      parseJson(R"({"a":1.5,"b":"x\nA","c":[true,null],"d":{}})");
  ASSERT_TRUE(Doc.has_value());
  ASSERT_TRUE(Doc->isObject());
  EXPECT_DOUBLE_EQ(Doc->find("a")->asNumber(), 1.5);
  EXPECT_EQ(Doc->find("b")->asString(), "x\nA");
  ASSERT_TRUE(Doc->find("c")->isArray());
  EXPECT_EQ(Doc->find("c")->elements().size(), 2u);
  EXPECT_TRUE(Doc->find("c")->elements()[0].asBool());
  EXPECT_TRUE(Doc->find("c")->elements()[1].isNull());
  EXPECT_TRUE(Doc->find("d")->isObject());
  EXPECT_EQ(Doc->find("missing"), nullptr);
}

TEST(JsonValueTest, MalformedInputIsBS900WithLocation) {
  ErrorOr<JsonValue> Doc = parseJson("{\"a\":\n  12,,}");
  ASSERT_FALSE(Doc.has_value());
  ASSERT_FALSE(Doc.errors().empty());
  const Diagnostic &D = Doc.errors().front();
  EXPECT_EQ(D.Code, DiagCode::JsonParseError);
  EXPECT_EQ(D.Line, 2u); // The offending byte, not just "somewhere".
}

TEST(JsonValueTest, TrailingGarbageRejected) {
  EXPECT_FALSE(parseJson("{} tail").has_value());
  EXPECT_TRUE(parseJson("{}  \n ").has_value());
}

TEST(JsonValueTest, DepthCapBoundsRecursion) {
  std::string Deep(200, '[');
  Deep.append(200, ']');
  EXPECT_FALSE(parseJson(Deep, /*MaxDepth=*/64).has_value());
  EXPECT_TRUE(parseJson("[[[[]]]]", /*MaxDepth=*/8).has_value());
}

TEST(JsonValueTest, DuplicateKeysPreservedInOrder) {
  ErrorOr<JsonValue> Doc = parseJson(R"({"k":1,"k":2})");
  ASSERT_TRUE(Doc.has_value());
  ASSERT_EQ(Doc->members().size(), 2u);
  EXPECT_DOUBLE_EQ(Doc->members()[0].second.asNumber(), 1.0);
  EXPECT_DOUBLE_EQ(Doc->members()[1].second.asNumber(), 2.0);
}

TEST(JsonValueTest, UInt64RejectsFractionsAndNegatives) {
  uint64_t Out = 0;
  ASSERT_TRUE(parseJson("3")->asUInt64(Out));
  EXPECT_EQ(Out, 3u);
  EXPECT_FALSE(parseJson("3.5")->asUInt64(Out));
  EXPECT_FALSE(parseJson("-1")->asUInt64(Out));
}

//===----------------------------------------------------------------------===//
// PipelineConfig schema v1.
//===----------------------------------------------------------------------===//

// The golden pin: this exact string is schema v1. Reordering, renaming,
// or removing a field is a schema event — bump SchemaVersion and provide
// a migration. Adding a key whose absence means its default (every v1
// document keeps parsing to the same config) stays within v1; update the
// string alongside the new knob.
constexpr const char *PaperDefaultJson =
    "{\"schema_version\":1,\"policy\":\"balanced\",\"optimistic_latency\":2,"
    "\"op_latencies\":{},"
    "\"target\":{\"int_regs\":26,\"fp_regs\":16,\"spill_pool_size\":4,"
    "\"fifo_spill_pool\":true},"
    "\"dag\":{\"disambiguate_same_base\":true,\"alias_analysis\":true},"
    "\"sched\":{\"issue_width\":1},"
    "\"closure\":{\"mode\":\"auto\",\"on_demand_threshold\":2048},"
    "\"run_regalloc\":true,\"second_scheduling_pass\":true,"
    "\"honor_known_latency\":true,\"rename_after_allocation\":false,"
    "\"certify\":true,"
    "\"budget\":{\"deadline_ms\":0,\"max_ticks\":0,"
    "\"max_instructions_per_block\":0,\"max_dag_edges\":0,"
    "\"max_closure_bits\":0,\"max_spill_slots\":0,\"degrade\":true}}";

TEST(ConfigJsonTest, PaperDefaultGolden) {
  EXPECT_EQ(PipelineConfig::paperDefault().toJson(), PaperDefaultJson);
}

TEST(ConfigJsonTest, EmptyObjectIsPaperDefault) {
  ErrorOr<PipelineConfig> Config = PipelineConfig::fromJson("{}");
  ASSERT_TRUE(Config.has_value());
  EXPECT_EQ(Config->toJson(), PaperDefaultJson);
}

TEST(ConfigJsonTest, RoundTripPreservesEveryKnob) {
  PipelineConfig Config = PipelineConfig::paperDefault();
  Config.Policy = SchedulerPolicy::Traditional;
  Config.OptimisticLatency = 3.5;
  Config.Ops.setOpLatency(Opcode::FMul, 4.0);
  Config.Target.NumIntRegs = 12;
  Config.Target.NumFpRegs = 6;
  Config.Target.SpillPoolSize = 2;
  Config.Target.FifoSpillPool = false;
  Config.DagOptions.DisambiguateSameBase = false;
  Config.DagOptions.AliasAnalysis = false;
  Config.SchedOptions.IssueWidth = 4;
  Config.Closure.Mode = ClosureMode::OnDemand;
  Config.Closure.OnDemandThreshold = 512;
  Config.RunRegAlloc = false;
  Config.SecondSchedulingPass = false;
  Config.HonorKnownLatency = false;
  Config.RenameAfterAllocation = true;
  Config.Certify = false;
  Config.Budget.DeadlineMs = 12.5;
  Config.Budget.MaxTicks = 1000;
  Config.Budget.MaxInstructionsPerBlock = 64;
  Config.Budget.MaxDagEdges = 4096;
  Config.Budget.MaxClosureBits = 1 << 20;
  Config.Budget.MaxSpillSlots = 7;
  Config.Budget.Degrade = false;

  ErrorOr<PipelineConfig> Parsed = PipelineConfig::fromJson(Config.toJson());
  ASSERT_TRUE(Parsed.has_value()) << Parsed.errorText();
  EXPECT_EQ(Parsed->toJson(), Config.toJson());
  EXPECT_EQ(Parsed->Policy, SchedulerPolicy::Traditional);
  EXPECT_DOUBLE_EQ(Parsed->Ops.opLatency(Opcode::FMul), 4.0);
  EXPECT_EQ(Parsed->SchedOptions.IssueWidth, 4u);
  EXPECT_DOUBLE_EQ(Parsed->Budget.DeadlineMs, 12.5);
  EXPECT_FALSE(Parsed->Budget.Degrade);
}

TEST(ConfigJsonTest, UnsupportedSchemaVersionIsBS901) {
  ErrorOr<PipelineConfig> Config =
      PipelineConfig::fromJson(R"({"schema_version":2})");
  ASSERT_FALSE(Config.has_value());
  EXPECT_EQ(Config.errors().front().Code, DiagCode::ProtocolSchemaVersion);
  EXPECT_NE(Config.errors().front().Message.find("this build speaks v1"),
            std::string::npos);
}

TEST(ConfigJsonTest, UnknownKeyIsBS902NotSilentDefault) {
  ErrorOr<PipelineConfig> Config =
      PipelineConfig::fromJson(R"({"certfy":true})");
  ASSERT_FALSE(Config.has_value());
  EXPECT_EQ(Config.errors().front().Code, DiagCode::ProtocolUnknownKey);
  EXPECT_NE(Config.errors().front().Message.find("'certfy'"),
            std::string::npos);
}

TEST(ConfigJsonTest, NestedUnknownKeyNamesTheFullPath) {
  ErrorOr<PipelineConfig> Config =
      PipelineConfig::fromJson(R"({"budget":{"max_tics":5}})");
  ASSERT_FALSE(Config.has_value());
  EXPECT_NE(Config.errors().front().Message.find("'budget.max_tics'"),
            std::string::npos);
}

TEST(ConfigJsonTest, TypeMismatchIsBS903) {
  ErrorOr<PipelineConfig> Config =
      PipelineConfig::fromJson(R"({"certify":"yes"})");
  ASSERT_FALSE(Config.has_value());
  EXPECT_EQ(Config.errors().front().Code, DiagCode::ProtocolBadValue);
  EXPECT_NE(Config.errors().front().Message.find("expects a boolean"),
            std::string::npos);
}

TEST(ConfigJsonTest, AliasAnalysisKnobRoundTripsAndRejects) {
  // Off round-trips...
  ErrorOr<PipelineConfig> Off =
      PipelineConfig::fromJson(R"({"dag":{"alias_analysis":false}})");
  ASSERT_TRUE(Off.has_value()) << Off.errorText();
  EXPECT_FALSE(Off->DagOptions.AliasAnalysis);
  EXPECT_NE(Off->toJson().find("\"alias_analysis\":false"),
            std::string::npos);
  // ...a misspelling is BS902 with the full path...
  ErrorOr<PipelineConfig> Bad =
      PipelineConfig::fromJson(R"({"dag":{"alias_anlysis":true}})");
  ASSERT_FALSE(Bad.has_value());
  EXPECT_EQ(Bad.errors().front().Code, DiagCode::ProtocolUnknownKey);
  EXPECT_NE(Bad.errors().front().Message.find("'dag.alias_anlysis'"),
            std::string::npos);
  // ...and a non-boolean value is BS903.
  ErrorOr<PipelineConfig> Wrong =
      PipelineConfig::fromJson(R"({"dag":{"alias_analysis":1}})");
  ASSERT_FALSE(Wrong.has_value());
  EXPECT_EQ(Wrong.errors().front().Code, DiagCode::ProtocolBadValue);
}

TEST(ConfigJsonTest, BadOpLatencyRejected) {
  EXPECT_FALSE(
      PipelineConfig::fromJson(R"({"op_latencies":{"nosuchop":2}})")
          .has_value());
  EXPECT_FALSE(
      PipelineConfig::fromJson(R"({"op_latencies":{"fmul":0.5}})")
          .has_value());
  EXPECT_TRUE(
      PipelineConfig::fromJson(R"({"op_latencies":{"fmul":2}})").has_value());
}

TEST(ConfigJsonTest, UnknownPolicyNameReported) {
  EXPECT_FALSE(PipelineConfig::fromJson(R"({"policy":"quantum"})")
                   .has_value());
}

TEST(ConfigJsonTest, MalformedDocumentIsBS900) {
  ErrorOr<PipelineConfig> Config = PipelineConfig::fromJson("{certify:");
  ASSERT_FALSE(Config.has_value());
  EXPECT_EQ(Config.errors().front().Code, DiagCode::JsonParseError);
}

TEST(ConfigJsonTest, AllFieldErrorsCollectedInOnePass) {
  // Misspelled key + type mismatch + bad version: the caller sees all
  // three, not just the first.
  ErrorOr<PipelineConfig> Config = PipelineConfig::fromJson(
      R"({"schema_version":9,"certify":1,"wat":true})");
  ASSERT_FALSE(Config.has_value());
  EXPECT_EQ(Config.errors().size(), 3u);
}

//===----------------------------------------------------------------------===//
// Request/response envelope.
//===----------------------------------------------------------------------===//

TEST(ProtocolTest, RequestRoundTrip) {
  CompileRequest Request;
  Request.Id = "r42";
  Request.Kernel = "func @k {\n}\n";
  Request.Config.Policy = SchedulerPolicy::Traditional;
  Request.Config.SchedOptions.IssueWidth = 2;
  Request.WantSchedule = false;
  Request.WantMetrics = true;

  ErrorOr<CompileRequest> Parsed = CompileRequest::fromJson(Request.toJson());
  ASSERT_TRUE(Parsed.has_value()) << Parsed.errorText();
  EXPECT_EQ(Parsed->Id, "r42");
  EXPECT_EQ(Parsed->Op, RequestOp::Compile);
  EXPECT_EQ(Parsed->Kernel, Request.Kernel);
  EXPECT_EQ(Parsed->Config.toJson(), Request.Config.toJson());
  EXPECT_FALSE(Parsed->WantSchedule);
  EXPECT_TRUE(Parsed->WantMetrics);
  EXPECT_EQ(Parsed->toJson(), Request.toJson());
}

TEST(ProtocolTest, NonCompileOpsOmitCompileFields) {
  CompileRequest Ping;
  Ping.Id = "p";
  Ping.Op = RequestOp::Ping;
  Ping.Kernel = "ignored";
  std::string Json = Ping.toJson();
  EXPECT_EQ(Json.find("kernel"), std::string::npos);
  EXPECT_EQ(Json.find("config"), std::string::npos);
  ErrorOr<CompileRequest> Parsed = CompileRequest::fromJson(Json);
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ(Parsed->Op, RequestOp::Ping);
}

TEST(ProtocolTest, MetricsOpRoundTripsWithFormat) {
  CompileRequest Request;
  Request.Id = "m";
  Request.Op = RequestOp::Metrics;
  // The default format is elided from the wire form.
  EXPECT_EQ(Request.toJson().find("metrics_format"), std::string::npos);

  Request.MetricsFormat = "prometheus";
  std::string Json = Request.toJson();
  EXPECT_NE(Json.find("\"metrics_format\":\"prometheus\""),
            std::string::npos);
  ErrorOr<CompileRequest> Parsed = CompileRequest::fromJson(Json);
  ASSERT_TRUE(Parsed.has_value()) << Parsed.errorText();
  EXPECT_EQ(Parsed->Op, RequestOp::Metrics);
  EXPECT_EQ(Parsed->MetricsFormat, "prometheus");
  EXPECT_EQ(Parsed->toJson(), Json);
}

TEST(ProtocolTest, UnknownMetricsFormatIsStructuredError) {
  ErrorOr<CompileRequest> Parsed = CompileRequest::fromJson(
      R"({"schema_version":1,"op":"metrics","metrics_format":"xml"})");
  ASSERT_FALSE(Parsed.has_value());
  EXPECT_EQ(Parsed.errors().front().Code, DiagCode::ProtocolBadValue);
  EXPECT_NE(Parsed.errorText().find("xml"), std::string::npos);
}

TEST(ProtocolTest, ResponseCarriesMetricsText) {
  CompileResponse Response;
  Response.Id = "m";
  Response.Ok = true;
  Response.MetricsText = "# TYPE a counter\na 1\n";
  ErrorOr<CompileResponse> Parsed =
      CompileResponse::fromJson(Response.toJson());
  ASSERT_TRUE(Parsed.has_value()) << Parsed.errorText();
  EXPECT_EQ(Parsed->MetricsText, Response.MetricsText);
}

TEST(ProtocolTest, UnknownOpIsStructuredError) {
  ErrorOr<CompileRequest> Parsed = CompileRequest::fromJson(
      R"({"schema_version":1,"op":"transpile"})");
  ASSERT_FALSE(Parsed.has_value());
  EXPECT_EQ(Parsed.errors().front().Code, DiagCode::ProtocolBadValue);
}

TEST(ProtocolTest, RequestUnknownKeyIsBS902) {
  ErrorOr<CompileRequest> Parsed =
      CompileRequest::fromJson(R"({"schema_version":1,"kernl":"x"})");
  ASSERT_FALSE(Parsed.has_value());
  EXPECT_EQ(Parsed.errors().front().Code, DiagCode::ProtocolUnknownKey);
}

TEST(ProtocolTest, RequestMustBeAnObject) {
  EXPECT_FALSE(CompileRequest::fromJson("[1,2]").has_value());
  EXPECT_FALSE(CompileRequest::fromJson("not json").has_value());
}

TEST(ProtocolTest, EmbeddedConfigErrorsSurfaceOnTheRequest) {
  ErrorOr<CompileRequest> Parsed = CompileRequest::fromJson(
      R"({"schema_version":1,"config":{"certfy":true}})");
  ASSERT_FALSE(Parsed.has_value());
  EXPECT_EQ(Parsed.errors().front().Code, DiagCode::ProtocolUnknownKey);
}

TEST(ProtocolTest, ResponseRoundTripWithDiagnostics) {
  CompileResponse Response;
  Response.Id = "r1";
  Response.Ok = false;
  Response.CacheHit = true;
  Response.Degradation = "union-find-chances";
  Response.StaticInstructions = 17;
  Response.StaticSpills = 3;
  Response.DynamicInstructions = 123.5;
  Response.DynamicSpills = 4.25;
  Response.WallMs = 1.5;
  Response.Schedule = "func @k {\n}\n";
  Response.Diags.push_back({7, 3, "expected 'func'", Severity::Error,
                            DiagCode::ParseExpectedToken});
  Response.Diags.push_back({0, 0, "deadline", Severity::Warning,
                            DiagCode::GovernorDeadlineExceeded});

  ErrorOr<CompileResponse> Parsed =
      CompileResponse::fromJson(Response.toJson());
  ASSERT_TRUE(Parsed.has_value()) << Parsed.errorText();
  EXPECT_EQ(Parsed->Id, "r1");
  EXPECT_FALSE(Parsed->Ok);
  EXPECT_TRUE(Parsed->CacheHit);
  EXPECT_EQ(Parsed->Degradation, "union-find-chances");
  EXPECT_EQ(Parsed->StaticInstructions, 17u);
  EXPECT_DOUBLE_EQ(Parsed->DynamicInstructions, 123.5);
  EXPECT_EQ(Parsed->Schedule, Response.Schedule);
  ASSERT_EQ(Parsed->Diags.size(), 2u);
  EXPECT_EQ(Parsed->Diags[0].Code, DiagCode::ParseExpectedToken);
  EXPECT_EQ(Parsed->Diags[0].Line, 7u);
  EXPECT_EQ(Parsed->Diags[0].Sev, Severity::Error);
  EXPECT_EQ(Parsed->Diags[1].Sev, Severity::Warning);
  EXPECT_EQ(Parsed->toJson(), Response.toJson());
}

//===----------------------------------------------------------------------===//
// Shared CLI flag parsing (support/CliOptions.h).
//===----------------------------------------------------------------------===//

/// Runs the parser over an argv; returns indices it did not consume.
std::vector<int> runCli(CliOptionParser &Cli, std::vector<const char *> Args,
                        bool &SawError) {
  Args.insert(Args.begin(), "tool");
  std::vector<int> Mine;
  SawError = false;
  for (int I = 1; I < static_cast<int>(Args.size()); ++I) {
    CliOptionParser::Match M = Cli.tryParse(
        static_cast<int>(Args.size()), const_cast<char **>(Args.data()), I);
    if (M == CliOptionParser::Match::Error)
      SawError = true;
    else if (M == CliOptionParser::Match::NotMine)
      Mine.push_back(I);
  }
  return Mine;
}

TEST(CliOptionsTest, BudgetFlagsParsed) {
  CliOptionParser Cli(CliOptionParser::WantBudget);
  bool Err = false;
  std::vector<int> Rest =
      runCli(Cli, {"--deadline-ms", "12.5", "--max-instrs", "64"}, Err);
  EXPECT_FALSE(Err);
  EXPECT_TRUE(Rest.empty());
  EXPECT_DOUBLE_EQ(Cli.options().Budget.DeadlineMs, 12.5);
  EXPECT_EQ(Cli.options().Budget.MaxInstructionsPerBlock, 64u);
}

TEST(CliOptionsTest, BadBudgetValueIsError) {
  CliOptionParser Cli(CliOptionParser::WantBudget);
  bool Err = false;
  runCli(Cli, {"--deadline-ms", "soon"}, Err);
  EXPECT_TRUE(Err);
  EXPECT_FALSE(Cli.error().empty());
}

TEST(CliOptionsTest, PolicyCarriedAsText) {
  CliOptionParser Cli(CliOptionParser::WantPolicy);
  bool Err = false;
  runCli(Cli, {"--policy", "traditional"}, Err);
  EXPECT_FALSE(Err);
  EXPECT_TRUE(Cli.options().HasPolicy);
  EXPECT_EQ(Cli.options().PolicyText, "traditional");
  // The text is opaque here; conversion happens in the pipeline layer.
  ErrorOr<SchedulerPolicy> Parsed =
      parsePolicyName(Cli.options().PolicyText);
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ(*Parsed, SchedulerPolicy::Traditional);
}

TEST(CliOptionsTest, UnwantedFlagFallsThroughAsNotMine) {
  CliOptionParser Cli(CliOptionParser::WantBudget); // No WantJson.
  bool Err = false;
  std::vector<int> Rest = runCli(Cli, {"--json", "--dot"}, Err);
  EXPECT_FALSE(Err);
  EXPECT_EQ(Rest.size(), 2u);
  EXPECT_FALSE(Cli.options().Json);
}

TEST(CliOptionsTest, JsonTraceAndConfigFlags) {
  CliOptionParser Cli(CliOptionParser::WantJson | CliOptionParser::WantTrace |
                      CliOptionParser::WantConfig);
  bool Err = false;
  std::vector<int> Rest = runCli(
      Cli, {"--json", "--trace-out=t.json", "--config", "cfg.json"}, Err);
  EXPECT_FALSE(Err);
  EXPECT_TRUE(Rest.empty());
  EXPECT_TRUE(Cli.options().Json);
  EXPECT_EQ(Cli.options().TraceOut, "t.json");
  EXPECT_EQ(Cli.options().ConfigFile, "cfg.json");
}

TEST(CliOptionsTest, UsageFragmentListsAcceptedFlags) {
  CliOptionParser Cli(CliOptionParser::WantCandidate |
                      CliOptionParser::WantBudget);
  std::string Usage = Cli.usageFragment();
  EXPECT_NE(Usage.find("--candidate"), std::string::npos);
  EXPECT_NE(Usage.find("--deadline-ms"), std::string::npos);
  EXPECT_EQ(Usage.find("--json"), std::string::npos);
  EXPECT_EQ(Usage.find("--log-file"), std::string::npos); // Not wanted.
}

TEST(CliOptionsTest, LogFlagsCarriedAsText) {
  CliOptionParser Cli(CliOptionParser::WantLog);
  bool Err = false;
  std::vector<int> Rest =
      runCli(Cli, {"--log-file", "out.ndjson", "--log-level", "debug"}, Err);
  EXPECT_FALSE(Err);
  EXPECT_TRUE(Rest.empty());
  EXPECT_EQ(Cli.options().LogFile, "out.ndjson");
  // The support layer sits below obs, so the level rides as text and the
  // logger validates it (configureGlobalLogger).
  EXPECT_EQ(Cli.options().LogLevelText, "debug");
  EXPECT_NE(Cli.usageFragment().find("--log-file"), std::string::npos);
  EXPECT_NE(Cli.usageFragment().find("--log-level"), std::string::npos);
}

TEST(CliOptionsTest, LogFlagsRequireValues) {
  CliOptionParser Cli(CliOptionParser::WantLog);
  bool Err = false;
  runCli(Cli, {"--log-file"}, Err);
  EXPECT_TRUE(Err);
  EXPECT_FALSE(Cli.error().empty());
}

//===----------------------------------------------------------------------===//
// Cache-key coverage: which PipelineConfig fields are a compile's identity.
//===----------------------------------------------------------------------===//

Function keyTestFunction() {
  const char *Source = R"(
func @k {
block body freq 1 {
  %i0 = li 64
  %f0 = fload [%i0 + 0] !a
  %f1 = fadd %f0, %f0
  fstore %f1, [%i0 + 8] !a
  ret
}
}
)";
  ParseResult Result = parseIr(Source);
  EXPECT_TRUE(Result.ok());
  return std::move(Result.Functions.front());
}

TEST(CacheKeyTest, EveryBehaviorAffectingFieldIsInTheKey) {
  Function F = keyTestFunction();
  const std::string Base =
      experimentCacheKey(F, PipelineConfig::paperDefault());

  // One mutation per behavior-affecting knob: each must move the key.
  std::vector<std::pair<const char *, PipelineConfig>> Mutants;
  auto Mutate = [&](const char *Name, auto Fn) {
    PipelineConfig C = PipelineConfig::paperDefault();
    Fn(C);
    Mutants.emplace_back(Name, std::move(C));
  };
  Mutate("policy", [](PipelineConfig &C) {
    C.Policy = SchedulerPolicy::Traditional;
  });
  Mutate("optimistic_latency",
         [](PipelineConfig &C) { C.OptimisticLatency = 9.0; });
  Mutate("op_latencies", [](PipelineConfig &C) {
    C.Ops.setOpLatency(Opcode::FMul, 5.0);
  });
  Mutate("int_regs", [](PipelineConfig &C) { C.Target.NumIntRegs = 9; });
  Mutate("fp_regs", [](PipelineConfig &C) { C.Target.NumFpRegs = 9; });
  Mutate("spill_pool_size",
         [](PipelineConfig &C) { C.Target.SpillPoolSize = 3; });
  Mutate("fifo_spill_pool",
         [](PipelineConfig &C) { C.Target.FifoSpillPool = false; });
  Mutate("disambiguate_same_base", [](PipelineConfig &C) {
    C.DagOptions.DisambiguateSameBase = false;
  });
  Mutate("alias_analysis", [](PipelineConfig &C) {
    C.DagOptions.AliasAnalysis = false;
  });
  Mutate("issue_width",
         [](PipelineConfig &C) { C.SchedOptions.IssueWidth = 2; });
  Mutate("run_regalloc", [](PipelineConfig &C) { C.RunRegAlloc = false; });
  Mutate("second_scheduling_pass",
         [](PipelineConfig &C) { C.SecondSchedulingPass = false; });
  Mutate("honor_known_latency",
         [](PipelineConfig &C) { C.HonorKnownLatency = false; });
  Mutate("rename_after_allocation",
         [](PipelineConfig &C) { C.RenameAfterAllocation = true; });
  Mutate("certify", [](PipelineConfig &C) { C.Certify = false; });
  Mutate("budget.deadline_ms",
         [](PipelineConfig &C) { C.Budget.DeadlineMs = 100.0; });
  Mutate("budget.max_ticks",
         [](PipelineConfig &C) { C.Budget.MaxTicks = 1000; });
  Mutate("budget.max_instructions_per_block",
         [](PipelineConfig &C) { C.Budget.MaxInstructionsPerBlock = 99; });
  Mutate("budget.max_dag_edges",
         [](PipelineConfig &C) { C.Budget.MaxDagEdges = 99; });
  Mutate("budget.max_closure_bits",
         [](PipelineConfig &C) { C.Budget.MaxClosureBits = 99; });
  Mutate("budget.max_spill_slots",
         [](PipelineConfig &C) { C.Budget.MaxSpillSlots = 99; });
  Mutate("budget.degrade",
         [](PipelineConfig &C) { C.Budget.Degrade = false; });
  Mutate("closure.mode", [](PipelineConfig &C) {
    C.Closure.Mode = ClosureMode::OnDemand;
  });
  Mutate("closure.on_demand_threshold",
         [](PipelineConfig &C) { C.Closure.OnDemandThreshold = 64; });

  for (const auto &[Name, Config] : Mutants)
    EXPECT_NE(experimentCacheKey(F, Config), Base)
        << "mutating '" << Name << "' must change the cache key";

  // And distinct mutants must not collide with each other.
  std::vector<std::string> Keys;
  for (const auto &[Name, Config] : Mutants)
    Keys.push_back(experimentCacheKey(F, Config));
  std::sort(Keys.begin(), Keys.end());
  EXPECT_EQ(std::adjacent_find(Keys.begin(), Keys.end()), Keys.end());
}

TEST(CacheKeyTest, ObsAndWeighterPoolAreKeyNeutral) {
  Function F = keyTestFunction();
  const std::string Base =
      experimentCacheKey(F, PipelineConfig::paperDefault());

  // Observing a compilation or parallelizing its weighting never changes
  // the result, so neither may move the key (CompileCache.h contract).
  MetricRegistry Metrics;
  PipelineConfig Observed = PipelineConfig::paperDefault();
  Observed.Obs.Metrics = &Metrics;
  EXPECT_EQ(experimentCacheKey(F, Observed), Base);

  ThreadPool Pool(2);
  PipelineConfig Pooled = PipelineConfig::paperDefault();
  Pooled.WeighterPool = &Pool;
  EXPECT_EQ(experimentCacheKey(F, Pooled), Base);

  // Ready-list selection is a pure-performance knob (identical schedules
  // by construction, pinned by SchedTest.HeapSelectionMatchesScan), so it
  // must stay key-neutral too.
  PipelineConfig Heaped = PipelineConfig::paperDefault();
  Heaped.SchedOptions.Selection = ReadySelection::Heap;
  EXPECT_EQ(experimentCacheKey(F, Heaped), Base);
}

TEST(CacheKeyTest, FunctionContentIsInTheKey) {
  Function F = keyTestFunction();
  PipelineConfig Config = PipelineConfig::paperDefault();
  const std::string Base = experimentCacheKey(F, Config);

  ParseResult Other = parseIr(R"(
func @k {
block body freq 1 {
  %i0 = li 65
  ret
}
}
)");
  ASSERT_TRUE(Other.ok());
  EXPECT_NE(experimentCacheKey(Other.Functions.front(), Config), Base);
  EXPECT_NE(experimentContentHash(Other.Functions.front(), Config),
            experimentContentHash(F, Config));
}

} // namespace

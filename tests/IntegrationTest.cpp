//===- tests/IntegrationTest.cpp - Cross-module sweep tests ---------------==//
//
// Part of the bsched project: a reproduction of Kerns & Eggers,
// "Balanced Scheduling" (PLDI 1993).
//
// Parameterized sweeps over the full configuration space: every policy on
// every benchmark through the complete pipeline, checked for structural
// validity, determinism and semantics preservation.
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"
#include "ir/IrPrinter.h"
#include "ir/IrVerifier.h"
#include "pipeline/Experiment.h"
#include "trace/TraceFormation.h"
#include "workload/PerfectClub.h"

#include <gtest/gtest.h>

using namespace bsched;

namespace {

using SweepParam = std::tuple<Benchmark, SchedulerPolicy>;

std::string sweepName(const ::testing::TestParamInfo<SweepParam> &Info) {
  std::string Name = benchmarkName(std::get<0>(Info.param)) + "_" +
                     policyName(std::get<1>(Info.param));
  // gtest parameter names must be alphanumeric.
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

} // namespace

class PipelineSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PipelineSweepTest, CompilesValidDeterministicCode) {
  auto [B, Policy] = GetParam();
  Function F = buildBenchmark(B);
  PipelineConfig Config;
  Config.Policy = Policy;
  Config.OptimisticLatency = 3.0;

  CompiledFunction First = runPipeline(F, Config).value();
  CompiledFunction Second = runPipeline(F, Config).value();
  EXPECT_TRUE(verifyClean(verifyFunction(First.Compiled)));
  EXPECT_EQ(printFunction(First.Compiled), printFunction(Second.Compiled));
  EXPECT_EQ(First.StaticSpills, Second.StaticSpills);
}

TEST_P(PipelineSweepTest, PreservesBlockSemantics) {
  auto [B, Policy] = GetParam();
  Function F = buildBenchmark(B);
  PipelineConfig Config;
  Config.Policy = Policy;
  CompiledFunction C = runPipeline(F, Config).value();

  AliasClassId Spill = C.Compiled.getOrCreateAliasClass(SpillAliasClassName);
  for (unsigned Block = 0; Block != F.numBlocks(); ++Block) {
    Interpreter Before, After;
    Before.run(F.block(Block));
    After.run(C.Compiled.block(Block));
    ASSERT_EQ(Before.memoryImage(), After.memoryImageExcluding(Spill))
        << benchmarkName(B) << " block " << Block;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, PipelineSweepTest,
    ::testing::Combine(::testing::ValuesIn(allBenchmarks()),
                       ::testing::Values(SchedulerPolicy::Traditional,
                                         SchedulerPolicy::Balanced,
                                         SchedulerPolicy::BalancedUnionFind,
                                         SchedulerPolicy::AverageLlp)),
    sweepName);

//===----------------------------------------------------------------------===
// Processor-model sweep: every model simulates every compiled benchmark.
//===----------------------------------------------------------------------===

class ProcessorSweepTest : public ::testing::TestWithParam<Benchmark> {};

TEST_P(ProcessorSweepTest, RestrictedModelsNeverBeatUnlimited) {
  Function F = buildBenchmark(GetParam());
  CompiledFunction C = runPipeline(F, {}).value();
  NetworkSystem Memory(3, 5);

  SimulationConfig Sim;
  Sim.NumRuns = 10;
  Sim.NumResamples = 40;

  Sim.Processor = ProcessorModel::unlimited();
  double Unl = runSimulation(C, Memory, Sim).value().MeanRuntime;
  for (ProcessorModel P :
       {ProcessorModel::maxOutstanding(8), ProcessorModel::maxOutstanding(2),
        ProcessorModel::maxLength(8), ProcessorModel::maxLength(4)}) {
    Sim.Processor = P;
    double Restricted = runSimulation(C, Memory, Sim).value().MeanRuntime;
    // Limits can only add stalls (same latency streams by seed).
    EXPECT_GE(Restricted, Unl * 0.999) << P.name();
  }
}

TEST_P(ProcessorSweepTest, TighterLimitsCostMore) {
  Function F = buildBenchmark(GetParam());
  CompiledFunction C = runPipeline(F, {}).value();
  NetworkSystem Memory(5, 5);
  SimulationConfig Sim;
  Sim.NumRuns = 10;
  Sim.NumResamples = 40;

  Sim.Processor = ProcessorModel::maxLength(16);
  double Loose = runSimulation(C, Memory, Sim).value().MeanRuntime;
  Sim.Processor = ProcessorModel::maxLength(2);
  double Tight = runSimulation(C, Memory, Sim).value().MeanRuntime;
  EXPECT_GE(Tight, Loose);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ProcessorSweepTest,
                         ::testing::ValuesIn(allBenchmarks()),
                         [](const auto &Info) {
                           return benchmarkName(Info.param);
                         });

//===----------------------------------------------------------------------===
// Superblock formation composes with the pipeline.
//===----------------------------------------------------------------------===

TEST(TracePipelineTest, FormedRegionsScheduleAndSimulate) {
  Function F = buildBenchmark(Benchmark::FLO52Q);
  Function Split = splitIntoChains(F, 8);
  TraceFormationResult Formed = formSuperblocks(Split);
  ASSERT_TRUE(verifyClean(verifyFunction(Formed.Formed)));

  CompiledFunction C = runPipeline(Formed.Formed, {}).value();
  EXPECT_TRUE(verifyClean(verifyFunction(C.Compiled)));
  NetworkSystem Memory(3, 5);
  SimulationConfig Sim;
  Sim.NumRuns = 8;
  Sim.NumResamples = 30;
  ProgramSimResult Res = runSimulation(C, Memory, Sim).value();
  EXPECT_GT(Res.MeanRuntime, 0.0);
}
